// riskroute_serverd amortization: the cost of answering one route query
// through a cold CLI-style boot (load the engine snapshot, construct the
// api::Service, answer) versus a warm riskroute_serverd process (the
// snapshot was loaded once at Start(); each query is one wire round trip
// over a Unix-domain socket through the bounded scheduler). Both sides
// produce byte-identical bodies — the serverd correctness contract — so
// the wall-clock ratio is pure boot amortization. tools/bench_compare.py
// runs the pair as "server_route" and gates the speedup (floor 10x) in
// BENCH_perf.json.
//
// The topology is synthetic and deterministic: a ~4k-PoP jittered grid
// with ring + chord links and Philox-keyed risks, ALT landmarks prepared
// before the freeze (a realistic deployment boots ALT-ready snapshots, so
// the cold side pays the landmark-table parse too).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/service.h"
#include "bench/common.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/route_engine.h"
#include "geo/geo_point.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/philox.h"

namespace {

using namespace riskroute;
namespace wire = server::wire;

constexpr std::size_t kNodes = 4000;
constexpr std::size_t kLandmarks = 8;
constexpr core::RiskParams kParams{1e5, 1e3};

core::RiskGraph BuildGraph() {
  util::PhiloxRng rng(2026, 0x5E2);
  core::RiskGraph graph;
  for (std::size_t i = 0; i < kNodes; ++i) {
    core::RiskNode node;
    node.name = "pop-" + std::to_string(i);
    // Jittered grid over the continental bounding box.
    const double row = static_cast<double>(i / 64);
    const double col = static_cast<double>(i % 64);
    node.location = geo::GeoPoint(26.0 + row * 0.34 + rng.NextUniform() * 0.1,
                                  -123.0 + col * 0.85 + rng.NextUniform() * 0.1);
    node.impact_fraction = 0.5 + 0.5 * rng.NextUniform();
    node.historical_risk = rng.NextUniform();
    graph.AddNode(std::move(node));
  }
  // Ring + two chord families: connected, sparse, non-trivial detours.
  for (std::size_t i = 0; i < kNodes; ++i) {
    graph.AddEdgeByDistance(i, (i + 1) % kNodes);
    if (i % 7 == 0) graph.AddEdgeByDistance(i, (i + 64) % kNodes);
    if (i % 131 == 0) graph.AddEdgeByDistance(i, (i + kNodes / 2) % kNodes);
  }
  return graph;
}

/// Built once per process: the frozen ALT-ready snapshot on disk, the
/// warm daemon serving it over a Unix socket, and a connected client.
struct ServerBenchFixture {
  std::string snapshot_path;
  api::Service service;          // the daemon's engine, loaded once
  server::ServerOptions options;
  server::Server daemon;
  server::Client client;
  wire::Request route;

  static api::Service FreezeAndBoot(const std::string& path) {
    core::RouteEngine engine(BuildGraph(), kParams);
    engine.PrepareLandmarks(kLandmarks);
    engine.SaveSnapshotFile(path);
    auto booted = api::Service::FromSnapshotFile(path);
    if (!booted.ok()) {
      std::fprintf(stderr, "bench_server: snapshot boot failed: %s\n",
                   booted.error().Render().c_str());
      std::abort();
    }
    return std::move(booted.value());
  }

  static server::ServerOptions MakeOptions() {
    server::ServerOptions options;
    options.unix_path =
        "/tmp/riskroute_bench_" + std::to_string(::getpid()) + ".sock";
    options.scheduler.workers = 2;
    return options;
  }

  ServerBenchFixture()
      : snapshot_path("/tmp/riskroute_bench_" + std::to_string(::getpid()) +
                      ".rre"),
        service(FreezeAndBoot(snapshot_path)),
        options(MakeOptions()),
        daemon(service, options),
        client((daemon.Start(),
                server::Client::ConnectUnix(options.unix_path))) {
    route.kind = wire::FrameKind::kRouteRequest;
    route.route.from = "pop-0";
    route.route.to = "pop-" + std::to_string(kNodes / 2 - 1);
  }

  ~ServerBenchFixture() {
    daemon.Stop();
    std::remove(snapshot_path.c_str());
  }
};

ServerBenchFixture& SharedFixture() {
  static ServerBenchFixture fixture;
  return fixture;
}

// ---------------------------------------------------------------------------
// Cold: what `riskroute route --engine-snapshot` pays per invocation —
// parse the snapshot (CSR + alpha + landmark tables), build the Service,
// answer one query. Process spawn/teardown is not even counted, so the
// measured ratio understates the real CLI-vs-daemon gap.

void BM_ColdCliRoute(benchmark::State& state) {
  const ServerBenchFixture& fixture = SharedFixture();
  api::RouteRequest request;
  request.from = fixture.route.route.from;
  request.to = fixture.route.route.to;
  for (auto _ : state) {
    auto booted = api::Service::FromSnapshotFile(fixture.snapshot_path);
    if (!booted.ok()) state.SkipWithError("snapshot boot failed");
    const api::RouteResponse response = booted.value().Route(request);
    benchmark::DoNotOptimize(response.body.size());
  }
}
BENCHMARK(BM_ColdCliRoute)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Warm: one wire round trip against the long-lived daemon — encode,
// socket write, scheduler dispatch, Service::Route, reply frame back.

void BM_WarmServerRoute(benchmark::State& state) {
  ServerBenchFixture& fixture = SharedFixture();
  for (auto _ : state) {
    const server::Client::Result reply = fixture.client.Call(fixture.route);
    if (reply.status != wire::Status::kOk) {
      state.SkipWithError("served route failed");
    }
    benchmark::DoNotOptimize(reply.body.size());
  }
}
BENCHMARK(BM_WarmServerRoute)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------

void Reproduce() {
  ServerBenchFixture& fixture = SharedFixture();
  api::RouteRequest request;
  request.from = fixture.route.route.from;
  request.to = fixture.route.route.to;
  const std::string direct = fixture.service.Route(request).body;
  const server::Client::Result served = fixture.client.Call(fixture.route);
  std::printf("synthetic topology: %zu PoPs, %zu landmarks prepared\n",
              kNodes, static_cast<std::size_t>(kLandmarks));
  std::printf("served route status: %d, body %zu bytes\n",
              static_cast<int>(served.status), served.body.size());
  std::printf("byte-identity (served vs direct Service::Route): %s\n",
              served.status == wire::Status::kOk && served.body == direct
                  ? "OK"
                  : "MISMATCH");
  if (served.status != wire::Status::kOk || served.body != direct) {
    std::fprintf(stderr, "bench_server: serverd correctness contract "
                         "violated; refusing to time a broken pair\n");
    std::abort();
  }
}

}  // namespace

RISKROUTE_BENCH_MAIN("riskroute_serverd warm-query amortization", Reproduce)
