// Table 2 — "Tier-1 Networks Analysis of Bit-Risk to Bit-Miles using
// RiskRoute": all-pairs intradomain risk-reduction (Eq 5) and
// distance-increase (Eq 6) ratios for the seven Tier-1 networks at
// lambda_h = 1e5 and 1e6 (lambda_f = 1e3, no active forecast).
//
// Reproduced shape: ratios grow with lambda_h; the much larger Level3
// network shows the smallest risk reduction (its per-PoP impact fractions
// are ~1/233).
#include <iostream>

#include "bench/common.h"
#include "core/riskroute.h"

namespace {

using namespace riskroute;

const char* kTier1Names[] = {"Level3", "ATT",   "Deutsche",   "NTT",
                             "Sprint", "Tinet", "Teliasonera"};

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  util::Table table({"Network Name", "# PoPs", "RR (1e5)", "DIR (1e5)",
                     "RR (1e6)", "DIR (1e6)"});
  for (const char* name : kTier1Names) {
    const core::RiskGraph graph = study.BuildGraphFor(name);
    const core::RatioReport low = core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e5, 1e3}, &pool);
    const core::RatioReport high = core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e6, 1e3}, &pool);
    table.Add(name, graph.node_count(), low.risk_reduction_ratio,
              low.distance_increase_ratio, high.risk_reduction_ratio,
              high.distance_increase_ratio);
  }
  table.Render(std::cout);
  std::cout << "(paper: Level3 0.075/0.015 & 0.258/0.136; DT 0.245/0.130 & "
               "0.384/0.446; ratios grow with lambda, Level3 smallest RR)\n";
}

void BM_SinglePairRiskRoute(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t a = i % graph.node_count();
    const std::size_t b = (i * 37 + 11) % graph.node_count();
    if (a != b) benchmark::DoNotOptimize(router.MinRiskRoute(a, b));
    ++i;
  }
}
BENCHMARK(BM_SinglePairRiskRoute)->Unit(benchmark::kMicrosecond);

void BM_AllPairsRatiosSmallTier1(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Deutsche");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e5, 1e3}, nullptr));
  }
}
BENCHMARK(BM_AllPairsRatiosSmallTier1)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Table 2: Tier-1 intradomain bit-risk vs bit-mile ratios (Eq 5 / Eq 6)",
    Reproduce)
