// Figure 11 — "Robust Experiments - The best additional peering
// relationship for each regional network".
//
// For every regional network, evaluates each candidate peer (co-located,
// not currently peered) by the interdomain lower-bound objective and
// prints the winner. Reproduced shape: the majority of regionals pick
// AT&T or Tinet (the tier-1s most regionals do not yet peer with, whose
// footprints best shortcut around risk).
#include <iostream>
#include <map>

#include "bench/common.h"
#include "provision/peering.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  core::MergedGraph merged = study.BuildMerged();
  const core::RiskParams params{1e5, 1e3};

  util::Table table({"Regional Network", "Best New Peer", "Coloc. PoPs",
                     "Objective Reduction"});
  std::map<std::string, int> winners;
  for (const std::size_t n :
       study.corpus().NetworksOfKind(topology::NetworkKind::kRegional)) {
    const auto recommendation =
        provision::RecommendPeering(merged, study.corpus(), n, params, 25.0,
                                    &pool);
    if (recommendation.best() == nullptr) {
      table.Add(study.corpus().network(n).name(), "(no candidate)", 0, 0.0);
      continue;
    }
    const auto& best = *recommendation.best();
    const std::string peer_name = study.corpus().network(best.peer.network).name();
    winners[peer_name]++;
    const double reduction =
        1.0 - best.objective / recommendation.baseline_objective;
    table.Add(study.corpus().network(n).name(), peer_name,
              best.peer.pairs.size(), reduction);
  }
  table.Render(std::cout);
  std::cout << "Winner tally:";
  for (const auto& [name, count] : winners) {
    std::cout << " " << name << "=" << count;
  }
  std::cout << "\n(paper Fig 11: a majority of regional networks choose to "
               "peer with either AT&T or Tinet)\n";
}

void BM_CandidatePeerEnumeration(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  const std::size_t digex = study.NetworkIndex("Digex");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        provision::EnumerateCandidatePeers(study.corpus(), digex, 25.0));
  }
}
BENCHMARK(BM_CandidatePeerEnumeration)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 11: best additional peering per regional network",
    Reproduce)
