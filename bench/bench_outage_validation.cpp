// Validation experiment (beyond the paper's figures): does minimizing
// bit-risk miles actually reduce exposure to the disasters the risk model
// was trained on? Monte-Carlo outage simulation over sampled catalog
// events, for three representative networks and a lambda sweep. The paper
// argues this qualitatively (Sections 1, 5); this bench quantifies it and
// doubles as an ablation of the lambda_h knob.
#include <iostream>

#include "bench/common.h"
#include "util/strings.h"
#include "hazard/synthesis.h"
#include "sim/outage_sim.h"
#include "sim/traffic.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const auto catalogs = hazard::SynthesizeAllCatalogs();

  util::Table table({"Network", "lambda_h", "Shortest affected",
                     "RiskRoute affected", "Affected ratio",
                     "Endpoint loss"});
  for (const char* name : {"Tinet", "Sprint", "Telepak"}) {
    const core::RiskGraph graph = study.BuildGraphFor(name);
    const sim::TrafficMatrix traffic = sim::TrafficMatrix::Gravity(graph);
    for (const double lambda : {0.0, 1e4, 1e5, 1e6}) {
      sim::OutageSimOptions options;
      options.trials = 1500;
      options.params = core::RiskParams{lambda, 0};
      const sim::OutageSimReport report =
          sim::RunOutageSimulation(graph, catalogs, traffic, options, &pool);
      table.Add(name, util::Format("%.0e", lambda),
                report.shortest_path_affected, report.riskroute_affected,
                report.AffectedRatio(), report.endpoint_loss);
    }
  }
  table.Render(std::cout);
  std::cout << "(affected ratio < 1 validates the metric: risk-aware paths "
               "cross sampled disaster footprints less often; the ratio "
               "falls as lambda_h grows)\n";
}

void BM_OutageTrialBatch(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Deutsche");
  static const sim::TrafficMatrix traffic = sim::TrafficMatrix::Gravity(graph);
  static const auto catalogs = hazard::SynthesizeAllCatalogs();
  for (auto _ : state) {
    sim::OutageSimOptions options;
    options.trials = 50;
    benchmark::DoNotOptimize(
        sim::RunOutageSimulation(graph, catalogs, traffic, options));
  }
}
BENCHMARK(BM_OutageTrialBatch)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Outage validation: do min-bit-risk paths dodge sampled disasters?",
    Reproduce)
