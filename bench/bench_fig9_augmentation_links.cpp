// Figure 9 — "Tier-1 Network RiskRoute Robustness Suggestions. The 10 best
// additional links found using the RiskRoute methodology" for the Level3,
// AT&T and Tinet networks.
//
// Greedy Eq 4 augmentation; each step prints the chosen endpoints and the
// remaining fraction of the original aggregate bit-risk miles. Reproduced
// shape: the suggested links bypass high-risk regions, and the densely
// connected Level3 gains the least per link.
#include <iostream>

#include "bench/common.h"
#include "util/strings.h"
#include "provision/augmentation.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const core::RiskParams params{1e5, 1e3};

  for (const char* name : {"Level3", "ATT", "Tinet"}) {
    const core::RiskGraph graph = study.BuildGraphFor(name);
    provision::AugmentationOptions options;
    options.links_to_add = 10;
    // Bound the exact-objective sweep on the 233-PoP Level3 network.
    options.candidates.max_candidates =
        graph.node_count() > 100 ? 60 : 300;
    const provision::AugmentationResult result =
        provision::GreedyAugment(graph, params, options, &pool);

    std::cout << "\n" << name
              << util::Format(" (original aggregate bit-risk %.3g):\n",
                              result.original_bit_risk_miles);
    util::Table table({"#", "New Link", "Link Miles",
                       "Fraction of Original Bit-Risk"});
    for (std::size_t s = 0; s < result.steps.size(); ++s) {
      const auto& step = result.steps[s];
      table.Add(s + 1,
                graph.node(step.link.a).name + " <-> " +
                    graph.node(step.link.b).name,
                step.link.direct_miles, step.fraction_of_original);
    }
    table.Render(std::cout);
  }
  std::cout << "(paper Fig 9: ten dotted suggested links per network, "
               "adding connectivity that avoids high-outage-risk areas)\n";
}

void BM_AggregateObjectiveSmall(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Deutsche");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::AggregateMinBitRisk(graph, core::RiskParams{1e5, 1e3}));
  }
}
BENCHMARK(BM_AggregateObjectiveSmall)->Unit(benchmark::kMillisecond);

void BM_CandidateEnumerationTinet(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Tinet");
  for (auto _ : state) {
    benchmark::DoNotOptimize(provision::EnumerateCandidateLinks(graph));
  }
}
BENCHMARK(BM_CandidateEnumerationTinet)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 9: ten best additional links for Level3 / AT&T / Tinet (Eq 4)",
    Reproduce)
