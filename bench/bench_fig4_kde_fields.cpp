// Figure 4 — "Bandwidth-optimized kernel density estimates of NOAA and
// FEMA data": the five per-hazard likelihood surfaces over the
// continental US.
//
// Rasterizes each hazard's KDE over a CONUS grid and reports, per hazard,
// the grid peak and the relative density at six reference cities.
// Reproduced shape: hurricanes peak along the Gulf/Atlantic coast,
// tornadoes in tornado alley, storms across the central plains/southeast,
// earthquakes on the west coast, wind fine-grained across the storm belt.
#include <iostream>

#include "bench/common.h"
#include "geo/bounding_box.h"
#include "hazard/risk_field.h"
#include "hazard/synthesis.h"
#include "util/strings.h"

namespace {

using namespace riskroute;

struct ReferenceCity {
  const char* name;
  geo::GeoPoint location;
};

const ReferenceCity kCities[] = {
    {"New Orleans LA", geo::GeoPoint(29.95, -90.07)},
    {"Oklahoma City OK", geo::GeoPoint(35.47, -97.52)},
    {"Chicago IL", geo::GeoPoint(41.88, -87.63)},
    {"Los Angeles CA", geo::GeoPoint(34.05, -118.24)},
    {"Seattle WA", geo::GeoPoint(47.61, -122.33)},
    {"New York NY", geo::GeoPoint(40.71, -74.01)},
};

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  const hazard::HistoricalRiskField& field = study.hazard_field();
  const geo::BoundingBox& conus = geo::ConusBounds();
  constexpr std::size_t kRows = 50, kCols = 120;

  for (std::size_t m = 0; m < field.model_count(); ++m) {
    const auto type = field.model_type(m);
    const auto raster = field.model(m).Raster(conus, kRows, kCols);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < raster.size(); ++i) {
      if (raster[i] > raster[peak]) peak = i;
    }
    const double peak_lat =
        conus.min_lat() + (static_cast<double>(peak / kCols) + 0.5) *
                              (conus.max_lat() - conus.min_lat()) / kRows;
    const double peak_lon =
        conus.min_lon() + (static_cast<double>(peak % kCols) + 0.5) *
                              (conus.max_lon() - conus.min_lon()) / kCols;
    std::cout << "\n" << hazard::ToString(type)
              << util::Format(": raster peak at (%.1f, %.1f), value %.3g\n",
                              peak_lat, peak_lon, raster[peak]);
    util::Table table({"Reference City", "Density (rel. to peak)"});
    for (const ReferenceCity& city : kCities) {
      table.Add(city.name, field.RiskAt(city.location, type) / raster[peak]);
    }
    table.Render(std::cout);
  }
  std::cout << "(paper Fig 4: hurricane peak Gulf coast, tornado peak "
               "OK/KS, storm peak central plains, earthquake peak west "
               "coast, wind fine-grained over the storm belt)\n";
}

void BM_KdeEvaluateHurricane(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  const auto& field = study.hazard_field();
  std::size_t i = 0;
  const geo::GeoPoint probes[] = {geo::GeoPoint(29.95, -90.07),
                                  geo::GeoPoint(40.71, -74.01),
                                  geo::GeoPoint(47.61, -122.33)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        field.RiskAt(probes[i % 3], hazard::HazardType::kFemaHurricane));
    ++i;
  }
}
BENCHMARK(BM_KdeEvaluateHurricane);

void BM_AggregateRiskAt(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  const auto& field = study.hazard_field();
  std::size_t i = 0;
  const geo::GeoPoint probes[] = {geo::GeoPoint(29.95, -90.07),
                                  geo::GeoPoint(40.71, -74.01),
                                  geo::GeoPoint(35.47, -97.52)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.RiskAt(probes[i % 3]));
    ++i;
  }
}
BENCHMARK(BM_AggregateRiskAt);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 4: per-hazard kernel density surfaces over the continental US",
    Reproduce)
