// Figures 5 & 6 — advisory-derived geo-spatial disaster forecasts.
//
// Figure 5 tracks Hurricane Irene's forecast risk region over time (three
// snapshots); Figure 6 shows the final geographic scope of Irene, Katrina
// and Sandy. This bench parses the generated NHC advisory text (the same
// NLP path as the paper's Section 4.4), prints snapshot rows for Irene,
// the final scope of all three storms, and the Section 7.3 counts of
// Tier-1 PoPs under hurricane-force winds (paper: Irene 86, Katrina 8,
// Sandy 115 — our one-PoP-per-city corpus yields smaller absolute counts
// with the same ordering).
#include <iostream>

#include "bench/common.h"
#include "forecast/forecast_risk.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();

  // --- Figure 5: Irene snapshots, parsed from advisory text. ---
  std::cout << "\nFigure 5 - Hurricane Irene forecast snapshots (parsed from "
               "NHC-format advisory text):\n";
  const auto irene_texts = forecast::GenerateAdvisoryTexts(forecast::IreneTrack());
  util::Table snapshots({"Advisory", "Time", "Center",
                         "Hurr. wind radius (mi)", "Trop. wind radius (mi)"});
  for (const std::size_t index :
       {irene_texts.size() / 3, 2 * irene_texts.size() / 3,
        irene_texts.size() - 1}) {
    const forecast::Advisory advisory =
        forecast::ParseAdvisory(irene_texts[index]);
    snapshots.Add(advisory.number, advisory.time.ToString(),
                  advisory.center.ToString(),
                  advisory.hurricane_wind_radius_miles,
                  advisory.tropical_wind_radius_miles);
  }
  snapshots.Render(std::cout);

  // --- Figure 6 + Section 7.3: final scopes and PoP counts. ---
  std::cout << "\nFigure 6 - final geo-spatial scope and Tier-1 PoPs in "
               "scope:\n";
  util::Table scope_table({"Storm", "Advisories", "Tier-1 PoPs (hurr.)",
                           "Tier-1 PoPs (trop.)", "Paper hurr. count"});
  const struct {
    const forecast::StormTrack* track;
    int paper_count;
  } storms[] = {{&forecast::IreneTrack(), 86},
                {&forecast::KatrinaTrack(), 8},
                {&forecast::SandyTrack(), 115}};
  for (const auto& [track, paper_count] : storms) {
    const forecast::StormScope scope(forecast::GenerateAdvisories(*track));
    std::size_t hurricane_pops = 0, tropical_pops = 0;
    for (const std::size_t n :
         study.corpus().NetworksOfKind(topology::NetworkKind::kTier1)) {
      hurricane_pops += scope.CountPopsInZone(study.corpus().network(n),
                                              forecast::WindZone::kHurricane);
      tropical_pops += scope.CountPopsInZone(study.corpus().network(n),
                                             forecast::WindZone::kTropical);
    }
    scope_table.Add(track->name, scope.advisory_count(), hurricane_pops,
                    tropical_pops, paper_count);
  }
  scope_table.Render(std::cout);
}

void BM_ParseAdvisory(benchmark::State& state) {
  const auto texts = forecast::GenerateAdvisoryTexts(forecast::SandyTrack());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forecast::ParseAdvisory(texts[i % texts.size()]));
    ++i;
  }
}
BENCHMARK(BM_ParseAdvisory);

void BM_StormScopeQuery(benchmark::State& state) {
  const forecast::StormScope scope(
      forecast::GenerateAdvisories(forecast::SandyTrack()));
  const geo::GeoPoint probe(40.71, -74.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scope.MaxZoneAt(probe));
  }
}
BENCHMARK(BM_StormScopeQuery);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figures 5/6: forecast parsing, storm scope over time, final scopes",
    Reproduce)
