// Streaming re-route benchmarks: forecast::StreamingReroute's incremental
// per-advisory step against the naive alternative — rebuild the forecast
// plane, refreeze the engine, and re-answer every PoP pair from scratch.
// tools/bench_compare.py runs the BM_StreamFullRebuild /
// BM_StreamIncremental pair and gates the speedup (floor 5x) in
// BENCH_perf.json.
//
// Both sides replay the same rolling Irene advisory sequence over the
// same synthetic CONUS graph and the same worker pool, and both produce
// the same answers (asserted bitwise in tests/streaming_test.cpp); only
// the work per advisory differs. The incremental side pays its baseline
// seed once, outside the timed loop — exactly how a serving session
// amortizes it.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "forecast/forecast_risk.h"
#include "forecast/streaming.h"
#include "forecast/tracks.h"
#include "geo/geo_point.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace riskroute;

constexpr std::size_t kNodes = 56;
constexpr std::uint64_t kSeed = 909;
constexpr core::RiskParams kParams{1e5, 1e3};

/// Synthetic CONUS-box graph (zero forecast plane — the streaming
/// session owns that dimension), same idiom as the api/service tests.
core::RiskGraph StreamGraph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  core::RiskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(core::RiskNode{
        "pop-" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        rng.Uniform(0.01, 1.0), rng.Uniform(0.0, 0.5), 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i + 3 < n; i += 3) graph.AddEdgeByDistance(i, i + 3);
  return graph;
}

struct StreamFixture {
  core::RiskGraph graph;
  core::RouteEngine engine;
  std::vector<forecast::Advisory> advisories;

  StreamFixture()
      : graph(StreamGraph(kNodes, kSeed)),
        engine(graph, kParams),
        advisories(forecast::GenerateAdvisories(forecast::IreneTrack())) {}
};

const StreamFixture& Fixture() {
  static const StreamFixture fixture;
  return fixture;
}

util::ThreadPool* BenchPool() {
  return bench::SharedPool().thread_count() > 1 ? &bench::SharedPool()
                                                : nullptr;
}

// ---------------------------------------------------------------------------
// Legacy side: what serving an advisory costs without the streaming
// layer. Per advisory: full-plane ForecastRiskField pass, engine
// refreeze, one targeted sweep per PoP pair, then the old-vs-new diff.

void BM_StreamFullRebuild(benchmark::State& state) {
  const StreamFixture& f = Fixture();
  util::ThreadPool* pool = BenchPool();
  const std::size_t n = f.graph.node_count();
  core::RiskGraph graph = f.graph;  // mutable forecast plane
  std::vector<double> prev_brm(n * (n - 1) / 2,
                               std::numeric_limits<double>::infinity());
  std::size_t k = 0;
  for (auto _ : state) {
    const forecast::Advisory& advisory = f.advisories[k];
    const forecast::ForecastRiskField field(advisory);
    std::vector<double> risks(n);
    for (std::size_t v = 0; v < n; ++v) {
      risks[v] = field.RiskAt(graph.node(v).location);
    }
    graph.SetForecastRisks(risks);
    const core::RouteEngine engine(graph, kParams);

    std::vector<double> brm(n * (n - 1) / 2,
                            std::numeric_limits<double>::infinity());
    const auto sweep_source = [&](std::size_t i) {
      thread_local core::DijkstraWorkspace ws;
      std::size_t p = i * (2 * n - i - 1) / 2;
      for (std::size_t j = i + 1; j < n; ++j, ++p) {
        engine.Run(ws, i, engine.Alpha(i, j), j);
        if (ws.Reached(j)) brm[p] = ws.DistanceTo(j);
      }
    };
    if (pool != nullptr) {
      util::ParallelFor(*pool, n - 1, sweep_source);
    } else {
      for (std::size_t i = 0; i + 1 < n; ++i) sweep_source(i);
    }

    std::size_t moved = 0;
    for (std::size_t p = 0; p < brm.size(); ++p) {
      if (brm[p] != prev_brm[p]) ++moved;
    }
    benchmark::DoNotOptimize(moved);
    prev_brm = std::move(brm);
    k = (k + 1) % f.advisories.size();
  }
}
BENCHMARK(BM_StreamFullRebuild)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Streaming side: the same advisory sequence through one rolling
// session. Advisory numbers are re-stamped strictly increasing so the
// sequence guard admits the wrap-around replay.

void BM_StreamIncremental(benchmark::State& state) {
  const StreamFixture& f = Fixture();
  forecast::StreamOptions options;
  options.pool = BenchPool();
  forecast::StreamingReroute session(f.engine, options);  // seed untimed
  int number = 0;
  std::size_t k = 0;
  for (auto _ : state) {
    forecast::Advisory advisory = f.advisories[k];
    advisory.number = ++number;
    auto diff = session.Ingest(advisory);
    benchmark::DoNotOptimize(diff);
    k = (k + 1) % f.advisories.size();
  }
}
BENCHMARK(BM_StreamIncremental)->Unit(benchmark::kMillisecond);

void Reproduce() {
  const StreamFixture& f = Fixture();
  forecast::StreamOptions options;
  options.pool = BenchPool();
  forecast::StreamingReroute session(f.engine, options);
  std::size_t recomputed = 0;
  std::size_t moved = 0;
  for (const forecast::Advisory& advisory : f.advisories) {
    const auto diff = session.Ingest(advisory);
    recomputed += diff.value().pairs_recomputed;
    moved += diff.value().pairs_moved;
  }
  std::printf("graph: %zu PoPs, %zu pairs | IRENE: %zu advisories\n",
              f.graph.node_count(), session.pair_count(),
              f.advisories.size());
  std::printf("rolling session: %zu pair recomputes (%.1f%% of the "
              "%zu-per-advisory naive sweep), %zu pair moves\n",
              recomputed,
              100.0 * static_cast<double>(recomputed) /
                  static_cast<double>(session.pair_count() *
                                      f.advisories.size()),
              session.pair_count(), moved);
}

}  // namespace

RISKROUTE_BENCH_MAIN("Streaming re-route: incremental advisory step",
                     Reproduce)
