// Figure 8 — "Interdomain RiskRoute experiments. Comparison of distance
// increase ratio and risk reduction ratio for regional networks".
//
// For each of the 16 regional networks: every PoP is a source and the PoPs
// of all regional networks are destinations, routed across the merged
// peering substrate (lambda_h = 1e5, as in the paper). Reproduced shape:
// a cloud where several networks obtain ~2x more risk reduction than the
// distance they pay (the paper names Digex, Gridnet, Hibernia, Bandcon),
// while others sit near the diagonal.
#include <iostream>

#include "bench/common.h"
#include "core/interdomain.h"
#include "core/riskroute.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const core::MergedGraph merged = study.BuildMerged();
  const core::RiskParams params{1e5, 1e3};

  util::Table table({"Network", "Distance Ratio", "Risk Ratio", "Pairs",
                     "Risk/Distance"});
  for (const std::size_t n :
       study.corpus().NetworksOfKind(topology::NetworkKind::kRegional)) {
    const core::RatioReport report =
        core::InterdomainRatios(merged, study.corpus(), n, params, &pool);
    const double advantage =
        report.distance_increase_ratio > 1e-9
            ? report.risk_reduction_ratio / report.distance_increase_ratio
            : 0.0;
    table.Add(study.corpus().network(n).name(),
              report.distance_increase_ratio, report.risk_reduction_ratio,
              report.pair_count, advantage);
  }
  table.Render(std::cout);
  std::cout << "(paper Fig 8: Digex, Gridnet, Hibernia and Bandcon cut ~20% "
               "bit-risk for ~10% extra distance; several others sit near "
               "the diagonal)\n";
}

void BM_InterdomainPairQuery(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::MergedGraph merged = study.BuildMerged();
  const core::RiskRouter router(merged.graph, core::RiskParams{1e5, 1e3});
  const std::size_t a = merged.GlobalId(study.NetworkIndex("Digex"), 0);
  const std::size_t b = merged.GlobalId(study.NetworkIndex("Telepak"), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.MinRiskRoute(a, b));
  }
}
BENCHMARK(BM_InterdomainPairQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 8: interdomain distance-increase vs risk-reduction scatter",
    Reproduce)
