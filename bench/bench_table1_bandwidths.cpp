// Table 1 — "Trained kernel density bandwidths for FEMA and NOAA data".
//
// Re-derives each hazard catalog's KDE bandwidth by 5-fold cross-validation
// with the KL-divergence score (paper Section 5.2) on the synthetic
// catalogs, and prints the paper's values alongside. The paper's ordering
// (wind finest, earthquake coarsest; bandwidth shrinking as event count
// grows within comparable geography) is the reproduced shape.
#include <iostream>

#include "bench/common.h"
#include "hazard/risk_field.h"
#include "hazard/synthesis.h"
#include "stats/bandwidth_cv.h"

namespace {

using namespace riskroute;

stats::CrossValidationOptions CvOptions() {
  stats::CrossValidationOptions options;
  options.max_train_events = 12000;
  options.max_eval_events = 2500;
  return options;
}

void Reproduce() {
  const auto catalogs = hazard::SynthesizeAllCatalogs();
  const auto paper = hazard::PaperBandwidths();
  const auto candidates = stats::LogSpacedBandwidths(2.0, 600.0, 12);

  util::Table table({"Event Type", "Number of Entries",
                     "Optimal Kernel Bandwidth (mi)", "Paper Bandwidth (mi)"});
  for (std::size_t i = 0; i < catalogs.size(); ++i) {
    const auto selection = stats::SelectBandwidth(catalogs[i].Locations(),
                                                  candidates, CvOptions());
    table.Add(std::string(hazard::ToString(catalogs[i].type())),
              catalogs[i].size(), selection.best_bandwidth_miles, paper[i]);
  }
  table.Render(std::cout);
}

void BM_BandwidthScore(benchmark::State& state) {
  // One fold-model evaluation at a mid-grid bandwidth on the (smallest)
  // earthquake catalog: the inner kernel of the CV sweep.
  static const hazard::Catalog catalog =
      hazard::SynthesizeCatalog(hazard::HazardType::kNoaaEarthquake, 11);
  static const stats::KernelDensity2D model(catalog.Locations(), 100.0);
  const auto& events = catalog.events();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(events[i % events.size()].location));
    ++i;
  }
}
BENCHMARK(BM_BandwidthScore);

void BM_SelectBandwidthSmallCatalog(benchmark::State& state) {
  static const hazard::Catalog catalog =
      hazard::SynthesizeCatalog(hazard::HazardType::kNoaaEarthquake, 11);
  const auto candidates = stats::LogSpacedBandwidths(50.0, 400.0, 3);
  auto options = CvOptions();
  options.max_eval_events = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::SelectBandwidth(catalog.Locations(), candidates, options));
  }
}
BENCHMARK(BM_SelectBandwidthSmallCatalog)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Table 1: cross-validated kernel bandwidths per hazard catalog",
    Reproduce)
