// Table 3 — "Regional Network routing performance coefficient of
// determination (R^2) with respect to network characteristics".
//
// Computes the interdomain ratios for each of the 16 regional networks
// (lambda_h = 1e5, as in Figure 8), then regresses them against six
// network characteristics. Reproduced shape: geographic footprint,
// number of PoPs and number of links correlate with the risk-reduction
// ratio; average PoP risk, outdegree and peer count do not (the paper's
// explanation: unavoidable endpoint risk cancels out of the ratio).
#include <iostream>

#include "bench/common.h"
#include "core/interdomain.h"
#include "core/riskroute.h"
#include "stats/regression.h"
#include "util/rng.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const core::MergedGraph merged = study.BuildMerged();
  const core::RiskParams params{1e5, 1e3};

  const auto regionals =
      study.corpus().NetworksOfKind(topology::NetworkKind::kRegional);
  std::vector<double> rr, dir;
  std::vector<double> footprint, avg_risk, outdegree, pops, links, peers;
  for (const std::size_t n : regionals) {
    const topology::Network& network = study.corpus().network(n);
    const core::RatioReport report =
        core::InterdomainRatios(merged, study.corpus(), n, params, &pool);
    rr.push_back(report.risk_reduction_ratio);
    dir.push_back(report.distance_increase_ratio);
    footprint.push_back(network.FootprintMiles());
    double risk_sum = 0.0;
    for (const topology::Pop& pop : network.pops()) {
      risk_sum += study.hazard_field().RiskAt(pop.location);
    }
    avg_risk.push_back(risk_sum / static_cast<double>(network.pop_count()));
    outdegree.push_back(network.AverageDegree());
    pops.push_back(static_cast<double>(network.pop_count()));
    links.push_back(static_cast<double>(network.link_count()));
    peers.push_back(static_cast<double>(study.corpus().PeersOf(n).size()));
  }

  util::Table table({"Network Characteristic", "Risk Reduction Ratio R^2",
                     "Distance Increase Ratio R^2"});
  const auto row = [&](const char* label, const std::vector<double>& xs) {
    table.Add(label, stats::RSquared(xs, rr), stats::RSquared(xs, dir));
  };
  row("Geographic Footprint", footprint);
  row("Average PoP Risk", avg_risk);
  row("Average Outdegree", outdegree);
  row("Number of PoPs", pops);
  row("Number of Links", links);
  row("Number of Peers", peers);
  table.Render(std::cout);
  std::cout << "(paper R^2 for RR: footprint 0.618, avg risk 0.104, "
               "outdegree 0.116, #PoPs 0.552, #links 0.531, #peers 0.155)\n";
}

void BM_RSquared(benchmark::State& state) {
  std::vector<double> xs, ys;
  util::Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    xs.push_back(rng.Uniform(0, 1));
    ys.push_back(rng.Uniform(0, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::RSquared(xs, ys));
  }
}
BENCHMARK(BM_RSquared);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Table 3: R^2 of regional network characteristics vs RiskRoute ratios",
    Reproduce)
