// riskroute_serverd tests: wire codec, bounded scheduler, and the full
// loopback client/server stack. The headline assertion is the serverd
// correctness contract — a served kOk body is byte-identical to the
// api::Service body (and hence to the CLI's stdout) for the same request
// against the same engine.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/route_engine.h"
#include "geo/geo_point.h"
#include "server/client.h"
#include "server/scheduler.h"
#include "server/server.h"
#include "server/wire.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

namespace wire = server::wire;
using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RouteEngine;

constexpr RiskParams kParams{1e5, 1e3};

RiskGraph SampleGraph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  RiskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "pop-" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        rng.Uniform(0.01, 1.0), rng.Uniform(0.0, 0.5),
        rng.Chance(0.5) ? rng.Uniform(0.0, 50.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i + 3 < n; i += 3) graph.AddEdgeByDistance(i, i + 3);
  return graph;
}

/// Short unique unix socket path (sun_path is ~108 bytes; stay in /tmp).
std::string TestSocketPath(int n) {
  return "/tmp/riskroute_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(n) + ".sock";
}

// --- Wire codec ---

TEST(WireTest, RequestRoundTripsAllKinds) {
  std::vector<wire::Request> requests;
  wire::Request route;
  route.kind = wire::FrameKind::kRouteRequest;
  route.id = 42;
  route.deadline_ms = 1500;
  route.route.from = "pop-1";
  route.route.to = "pop-2";
  requests.push_back(route);
  wire::Request ratios;
  ratios.kind = wire::FrameKind::kRatiosRequest;
  ratios.ratios.label = "parity";
  requests.push_back(ratios);
  wire::Request ensemble;
  ensemble.kind = wire::FrameKind::kEnsembleRequest;
  ensemble.ensemble.scenarios = 64;
  ensemble.ensemble.seed = 99;
  ensemble.ensemble.month = 9;
  ensemble.ensemble.top = 3;
  ensemble.ensemble.json = true;
  requests.push_back(ensemble);
  wire::Request triage;
  triage.kind = wire::FrameKind::kEnsembleTriageRequest;
  triage.ensemble.scenarios = 100'000;
  triage.ensemble.seed = 2026;
  triage.ensemble.month = 8;
  triage.ensemble.top = 5;
  triage.ensemble.json = true;
  triage.ensemble.triage = true;  // decoder sets this; canonical re-encode
  triage.ensemble.pilot = 96;
  triage.ensemble.audit_stride = 1024;
  triage.ensemble.base_rate_ppm = 10'000;
  requests.push_back(triage);
  wire::Request provision;
  provision.kind = wire::FrameKind::kProvisionRequest;
  provision.provision.links = 7;
  requests.push_back(provision);
  wire::Request ping;
  ping.kind = wire::FrameKind::kPingRequest;
  ping.ping_delay_ms = 25;
  requests.push_back(ping);
  wire::Request shutdown;
  shutdown.kind = wire::FrameKind::kShutdownRequest;
  requests.push_back(shutdown);

  const wire::WireLimits limits;
  for (const wire::Request& request : requests) {
    const std::string encoded = wire::EncodeRequest(request);
    const auto frame = wire::DecodeSingleFrame(
        {reinterpret_cast<const std::uint8_t*>(encoded.data()),
         encoded.size()},
        limits);
    ASSERT_TRUE(frame.ok()) << frame.error().Render();
    const auto decoded = wire::DecodeRequestPayload(
        frame.value().header,
        {reinterpret_cast<const std::uint8_t*>(frame.value().payload.data()),
         frame.value().payload.size()},
        limits);
    ASSERT_TRUE(decoded.ok()) << decoded.error().Render();
    // Canonical: re-encoding reproduces the original bytes.
    EXPECT_EQ(wire::EncodeRequest(decoded.value()), encoded);
  }
}

TEST(WireTest, ResponseRoundTrips) {
  const std::string encoded =
      wire::EncodeResponse(77, wire::Status::kOverloaded, "queue full\n");
  const auto frame = wire::DecodeSingleFrame(
      {reinterpret_cast<const std::uint8_t*>(encoded.data()), encoded.size()},
      wire::ResponseLimits());
  ASSERT_TRUE(frame.ok());
  const auto decoded = wire::DecodeResponsePayload(
      frame.value().header,
      {reinterpret_cast<const std::uint8_t*>(frame.value().payload.data()),
       frame.value().payload.size()},
      wire::ResponseLimits());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 77u);
  EXPECT_EQ(decoded.value().status, wire::Status::kOverloaded);
  EXPECT_EQ(decoded.value().body, "queue full\n");
}

TEST(WireTest, HostileFramesRejectWithDiagnostics) {
  const wire::WireLimits limits;
  const auto decode = [&](std::string bytes) {
    return wire::DecodeSingleFrame(
        {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()},
        limits);
  };
  wire::Request ping;
  ping.kind = wire::FrameKind::kPingRequest;
  const std::string valid = wire::EncodeRequest(ping);

  // Truncated header.
  EXPECT_FALSE(decode(valid.substr(0, 10)).ok());
  // Bad magic.
  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode(bad_magic).ok());
  // Unsupported version.
  std::string bad_version = valid;
  bad_version[4] = '\x09';
  EXPECT_FALSE(decode(bad_version).ok());
  // Oversized declared payload length.
  std::string oversized = valid;
  oversized[16] = '\xff';
  oversized[17] = '\xff';
  oversized[18] = '\xff';
  oversized[19] = '\x0f';
  const auto oversized_result = decode(oversized);
  ASSERT_FALSE(oversized_result.ok());
  EXPECT_EQ(oversized_result.error().kind,
            util::ParseErrorKind::kLimitExceeded);
  // Trailing garbage after a complete frame.
  EXPECT_FALSE(decode(valid + "ZZ").ok());
  // Every reject explains itself.
  EXPECT_FALSE(decode(valid.substr(0, 10)).error().message.empty());
}

// Kind 8 carries the triage knobs after the kind-3 fields; each knob has
// its own domain and the payload must be exactly consumed. The encoder is
// deliberately non-validating (canonical bytes for whatever it is handed),
// so hostile values are produced by encoding them directly.
TEST(WireTest, EnsembleTriagePayloadValidation) {
  const wire::WireLimits limits;
  wire::Request valid;
  valid.kind = wire::FrameKind::kEnsembleTriageRequest;
  valid.ensemble.scenarios = 4096;
  valid.ensemble.seed = 7;
  valid.ensemble.month = 9;
  valid.ensemble.top = 4;
  valid.ensemble.triage = true;
  valid.ensemble.pilot = 48;
  valid.ensemble.audit_stride = 256;
  valid.ensemble.base_rate_ppm = 250'000;

  // Decode the payload of an encoded request, optionally resized.
  const auto decode = [&](const wire::Request& request,
                          int payload_delta = 0) {
    std::string encoded = wire::EncodeRequest(request);
    if (payload_delta > 0) {
      encoded.append(static_cast<std::size_t>(payload_delta), '\x00');
      // Patch the declared payload length to cover the trailing bytes.
      const std::uint32_t len = static_cast<std::uint32_t>(
          encoded.size() - wire::kFrameHeaderBytes);
      encoded[16] = static_cast<char>(len & 0xff);
      encoded[17] = static_cast<char>((len >> 8) & 0xff);
      encoded[18] = static_cast<char>((len >> 16) & 0xff);
      encoded[19] = static_cast<char>((len >> 24) & 0xff);
    }
    const auto frame = wire::DecodeSingleFrame(
        {reinterpret_cast<const std::uint8_t*>(encoded.data()),
         encoded.size()},
        limits);
    if (!frame.ok()) return wire::DecodeRequestPayload(wire::FrameHeader{},
                                                       {}, limits);
    std::span<const std::uint8_t> payload{
        reinterpret_cast<const std::uint8_t*>(frame.value().payload.data()),
        frame.value().payload.size()};
    if (payload_delta < 0) {
      payload = payload.subspan(
          0, payload.size() - static_cast<std::size_t>(-payload_delta));
    }
    return wire::DecodeRequestPayload(frame.value().header, payload, limits);
  };

  ASSERT_TRUE(decode(valid).ok()) << decode(valid).error().Render();

  const auto mutate = [&](auto&& fn) {
    wire::Request request = valid;
    fn(request);
    return request;
  };
  // pilot must be in [1, max_scenarios].
  EXPECT_FALSE(decode(mutate([](wire::Request& r) {
                 r.ensemble.pilot = 0;
               })).ok());
  EXPECT_FALSE(decode(mutate([&](wire::Request& r) {
                 r.ensemble.pilot = limits.max_scenarios + 1u;
               })).ok());
  // audit_stride must be in [1, max_audit_stride].
  EXPECT_FALSE(decode(mutate([](wire::Request& r) {
                 r.ensemble.audit_stride = 0;
               })).ok());
  EXPECT_FALSE(decode(mutate([&](wire::Request& r) {
                 r.ensemble.audit_stride = limits.max_audit_stride + 1u;
               })).ok());
  // base_rate_ppm must be in [1, 1000000] — a zero keep rate samples
  // nothing and anything over 1.0 is not a probability.
  EXPECT_FALSE(decode(mutate([](wire::Request& r) {
                 r.ensemble.base_rate_ppm = 0;
               })).ok());
  EXPECT_FALSE(decode(mutate([](wire::Request& r) {
                 r.ensemble.base_rate_ppm = 1'000'001;
               })).ok());
  // The kind-3 domain checks still apply to the shared prefix.
  EXPECT_FALSE(decode(mutate([](wire::Request& r) {
                 r.ensemble.scenarios = 0;
               })).ok());
  EXPECT_FALSE(decode(mutate([](wire::Request& r) {
                 r.ensemble.month = 13;
               })).ok());
  // Truncated and oversized payloads reject (exact consumption).
  for (int delta : {-1, -4, 1, 3}) {
    const auto result = decode(valid, delta);
    EXPECT_FALSE(result.ok()) << "delta " << delta;
    EXPECT_FALSE(result.error().message.empty());
  }
  // Rejects carry a diagnostic.
  EXPECT_FALSE(
      decode(mutate([](wire::Request& r) { r.ensemble.pilot = 0; }))
          .error()
          .message.empty());
}

TEST(WireTest, AssemblerReassemblesByteDribble) {
  wire::Request ratios;
  ratios.kind = wire::FrameKind::kRatiosRequest;
  ratios.id = 5;
  ratios.ratios.label = "drip";
  wire::Request ping;
  ping.kind = wire::FrameKind::kPingRequest;
  ping.id = 6;
  const std::string stream =
      wire::EncodeRequest(ratios) + wire::EncodeRequest(ping);

  wire::FrameAssembler assembler{wire::WireLimits{}};
  std::vector<wire::Frame> frames;
  for (char byte : stream) {
    assembler.Append(&byte, 1);
    for (;;) {
      auto polled = assembler.Poll();
      ASSERT_TRUE(polled.ok()) << polled.error().Render();
      if (!polled.value().has_value()) break;
      frames.push_back(std::move(*polled.value()));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.id, 5u);
  EXPECT_EQ(frames[1].header.id, 6u);
  EXPECT_EQ(assembler.buffered(), 0u);
}

// --- Scheduler ---

TEST(SchedulerTest, ZeroCapacityAcceptsOnlyWhenWorkerIdle) {
  server::SchedulerOptions options;
  options.workers = 1;
  options.queue_capacity = 0;
  server::RequestScheduler scheduler(options);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  const auto blocker = [&](server::TaskFate fate) {
    if (fate == server::TaskFate::kRun) {
      started = true;
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ++ran;
    }
  };
  const auto deadline = server::RequestScheduler::Clock::time_point::max();
  ASSERT_EQ(scheduler.TrySubmit(blocker, deadline),
            server::RequestScheduler::Submit::kAccepted);
  // Once the worker is demonstrably busy (idle_workers == 0, queue empty),
  // a zero-capacity scheduler must bounce the next submit.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(scheduler.TrySubmit([](server::TaskFate) {}, deadline),
            server::RequestScheduler::Submit::kQueueFull);
  release = true;
  scheduler.Stop();  // joins the worker, so the blocker has finished
  EXPECT_EQ(ran.load(), 1);
}

TEST(SchedulerTest, ExpiredDeadlineSkipsExecution) {
  server::SchedulerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  server::RequestScheduler scheduler(options);

  std::atomic<bool> release{false};
  ASSERT_EQ(scheduler.TrySubmit(
                [&](server::TaskFate) {
                  while (!release.load()) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                  }
                },
                server::RequestScheduler::Clock::time_point::max()),
            server::RequestScheduler::Submit::kAccepted);

  std::atomic<int> fate_seen{-1};
  ASSERT_EQ(scheduler.TrySubmit(
                [&](server::TaskFate fate) {
                  fate_seen = static_cast<int>(fate);
                },
                server::RequestScheduler::Clock::now() +
                    std::chrono::milliseconds(30)),
            server::RequestScheduler::Submit::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  release = true;
  // Wait for the worker to reach the expired task before stopping —
  // Stop() would otherwise cancel it while still queued.
  const auto give_up =
      server::RequestScheduler::Clock::now() + std::chrono::seconds(5);
  while (fate_seen.load() < 0 &&
         server::RequestScheduler::Clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.Stop();
  EXPECT_EQ(fate_seen.load(),
            static_cast<int>(server::TaskFate::kExpired));
}

TEST(SchedulerTest, StopCancelsQueuedTasks) {
  server::SchedulerOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  server::RequestScheduler scheduler(options);

  std::atomic<bool> release{false};
  ASSERT_EQ(scheduler.TrySubmit(
                [&](server::TaskFate) {
                  while (!release.load()) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                  }
                },
                server::RequestScheduler::Clock::time_point::max()),
            server::RequestScheduler::Submit::kAccepted);
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(scheduler.TrySubmit(
                  [&](server::TaskFate fate) {
                    if (fate == server::TaskFate::kCancelled) ++cancelled;
                  },
                  server::RequestScheduler::Clock::time_point::max()),
              server::RequestScheduler::Submit::kAccepted);
  }
  release = true;
  scheduler.Stop();
  EXPECT_EQ(cancelled.load(), 3);
  EXPECT_EQ(scheduler.TrySubmit([](server::TaskFate) {},
                                server::RequestScheduler::Clock::time_point::max()),
            server::RequestScheduler::Submit::kStopped);
}

// --- Loopback client/server ---

class ServerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 20;

  api::Service MakeService(util::ThreadPool* pool) const {
    api::ServiceOptions options;
    options.pool = pool;
    return api::Service(RouteEngine(SampleGraph(kNodes, 11), kParams),
                        options);
  }
};

TEST_F(ServerTest, ServedBodiesAreByteIdenticalToServiceAcrossPoolSizes) {
  int socket_n = 0;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const api::Service service = MakeService(&pool);

    server::ServerOptions options;
    options.unix_path = TestSocketPath(socket_n++);
    options.scheduler.workers = 2;
    server::Server daemon(service, options);
    daemon.Start();
    server::Client client = server::Client::ConnectUnix(options.unix_path);

    wire::Request route;
    route.kind = wire::FrameKind::kRouteRequest;
    route.route.from = "pop-0";
    route.route.to = "pop-" + std::to_string(kNodes - 1);
    const auto route_reply = client.Call(route);
    EXPECT_EQ(route_reply.status, wire::Status::kOk);
    EXPECT_EQ(route_reply.body, service.Route(route.route).body);

    wire::Request ratios;
    ratios.kind = wire::FrameKind::kRatiosRequest;
    ratios.ratios.label = "loopback";
    const auto ratios_reply = client.Call(ratios);
    EXPECT_EQ(ratios_reply.status, wire::Status::kOk);
    EXPECT_EQ(ratios_reply.body, service.Ratios(ratios.ratios).body);

    wire::Request ensemble;
    ensemble.kind = wire::FrameKind::kEnsembleRequest;
    ensemble.ensemble.scenarios = 12;
    ensemble.ensemble.top = 3;
    ensemble.ensemble.json = true;
    const auto ensemble_reply = client.Call(ensemble);
    EXPECT_EQ(ensemble_reply.status, wire::Status::kOk);
    EXPECT_EQ(ensemble_reply.body, service.Ensemble(ensemble.ensemble).body);

    wire::Request provision;
    provision.kind = wire::FrameKind::kProvisionRequest;
    provision.provision.links = 1;
    const auto provision_reply = client.Call(provision);
    EXPECT_EQ(provision_reply.status, wire::Status::kOk);
    EXPECT_EQ(provision_reply.body,
              service.Provision(provision.provision).body);

    daemon.Stop();
  }
}

TEST_F(ServerTest, TcpLoopbackServesEphemeralPort) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  server::Server daemon(service, options);
  daemon.Start();
  ASSERT_GT(daemon.tcp_port(), 0);

  server::Client client =
      server::Client::ConnectTcp("127.0.0.1", daemon.tcp_port());
  wire::Request ping;
  ping.kind = wire::FrameKind::kPingRequest;
  const auto reply = client.Call(ping);
  EXPECT_EQ(reply.status, wire::Status::kOk);
  EXPECT_EQ(reply.body, "pong\n");
  daemon.Stop();
}

TEST_F(ServerTest, UnknownPopAnswersBadRequestAndKeepsConnection) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.unix_path = TestSocketPath(10);
  server::Server daemon(service, options);
  daemon.Start();
  server::Client client = server::Client::ConnectUnix(options.unix_path);

  wire::Request route;
  route.kind = wire::FrameKind::kRouteRequest;
  route.route.from = "Atlantis, XX";
  route.route.to = "pop-1";
  const auto reply = client.Call(route);
  EXPECT_EQ(reply.status, wire::Status::kBadRequest);
  EXPECT_EQ(reply.body, "no PoP named 'Atlantis, XX' in this network\n");

  // The connection survives a bad request.
  wire::Request ping;
  ping.kind = wire::FrameKind::kPingRequest;
  EXPECT_EQ(client.Call(ping).status, wire::Status::kOk);
  daemon.Stop();
}

TEST_F(ServerTest, QueueFullAnswersOverloaded) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.unix_path = TestSocketPath(11);
  options.scheduler.workers = 1;
  options.scheduler.queue_capacity = 0;  // accept only when worker idle
  server::Server daemon(service, options);
  daemon.Start();

  // Connection A occupies the single worker with a slow ping.
  server::Client slow = server::Client::ConnectUnix(options.unix_path);
  std::thread slow_call([&slow] {
    wire::Request ping;
    ping.kind = wire::FrameKind::kPingRequest;
    ping.ping_delay_ms = 400;
    EXPECT_EQ(slow.Call(ping).status, wire::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Connection B submits while the worker is busy and the queue is full.
  server::Client fast = server::Client::ConnectUnix(options.unix_path);
  wire::Request route;
  route.kind = wire::FrameKind::kRouteRequest;
  route.route.from = "pop-0";
  route.route.to = "pop-1";
  const auto reply = fast.Call(route);
  EXPECT_EQ(reply.status, wire::Status::kOverloaded);
  EXPECT_EQ(reply.body, "server queue is full\n");

  slow_call.join();
  daemon.Stop();
}

TEST_F(ServerTest, ExpiredDeadlineAnswersDeadlineExceeded) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.unix_path = TestSocketPath(12);
  options.scheduler.workers = 1;
  options.scheduler.queue_capacity = 4;
  server::Server daemon(service, options);
  daemon.Start();

  server::Client slow = server::Client::ConnectUnix(options.unix_path);
  std::thread slow_call([&slow] {
    wire::Request ping;
    ping.kind = wire::FrameKind::kPingRequest;
    ping.ping_delay_ms = 400;
    EXPECT_EQ(slow.Call(ping).status, wire::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  server::Client fast = server::Client::ConnectUnix(options.unix_path);
  wire::Request route;
  route.kind = wire::FrameKind::kRouteRequest;
  route.route.from = "pop-0";
  route.route.to = "pop-1";
  route.deadline_ms = 50;  // expires while queued behind the slow ping
  const auto reply = fast.Call(route);
  EXPECT_EQ(reply.status, wire::Status::kDeadlineExceeded);
  EXPECT_EQ(reply.body, "deadline exceeded\n");

  slow_call.join();
  daemon.Stop();
}

TEST_F(ServerTest, GarbageBytesAnswerBadRequestAndClose) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.unix_path = TestSocketPath(13);
  server::Server daemon(service, options);
  daemon.Start();

  // Raw socket: a corrupted magic must draw a connection-level
  // kBadRequest reply with request id 0, then the server closes.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                options.unix_path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  wire::Request ping;
  ping.kind = wire::FrameKind::kPingRequest;
  std::string bytes = wire::EncodeRequest(ping);
  bytes[0] = 'X';  // corrupt the magic
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));

  wire::FrameAssembler assembler{wire::ResponseLimits()};
  wire::Response reply;
  bool got_reply = false;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // server closed after replying
    assembler.Append(buffer, static_cast<std::size_t>(n));
    auto polled = assembler.Poll();
    ASSERT_TRUE(polled.ok()) << polled.error().Render();
    if (!polled.value().has_value()) continue;
    const wire::Frame& frame = *polled.value();
    const auto decoded = wire::DecodeResponsePayload(
        frame.header,
        {reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
         frame.payload.size()},
        wire::ResponseLimits());
    ASSERT_TRUE(decoded.ok()) << decoded.error().Render();
    reply = decoded.value();
    got_reply = true;
  }
  ::close(fd);
  ASSERT_TRUE(got_reply);
  EXPECT_EQ(reply.id, 0u);
  EXPECT_EQ(reply.status, wire::Status::kBadRequest);
  EXPECT_FALSE(reply.body.empty());
  daemon.Stop();
}

TEST_F(ServerTest, WireShutdownRequestStopsTheServer) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.unix_path = TestSocketPath(14);
  server::Server daemon(service, options);
  daemon.Start();

  server::Client client = server::Client::ConnectUnix(options.unix_path);
  wire::Request shutdown;
  shutdown.kind = wire::FrameKind::kShutdownRequest;
  const auto reply = client.Call(shutdown);
  EXPECT_EQ(reply.status, wire::Status::kOk);
  EXPECT_EQ(reply.body, "shutting down\n");
  EXPECT_TRUE(daemon.WaitFor(std::chrono::seconds(5)));
  daemon.Stop();
  EXPECT_GE(daemon.requests_served(), 1u);
}

TEST_F(ServerTest, RemoteShutdownCanBeDisabled) {
  util::ThreadPool pool(1);
  const api::Service service = MakeService(&pool);
  server::ServerOptions options;
  options.unix_path = TestSocketPath(15);
  options.allow_remote_shutdown = false;
  server::Server daemon(service, options);
  daemon.Start();

  server::Client client = server::Client::ConnectUnix(options.unix_path);
  wire::Request shutdown;
  shutdown.kind = wire::FrameKind::kShutdownRequest;
  const auto reply = client.Call(shutdown);
  EXPECT_EQ(reply.status, wire::Status::kBadRequest);
  EXPECT_FALSE(daemon.WaitFor(std::chrono::milliseconds(50)));
  daemon.Stop();
}

}  // namespace
}  // namespace riskroute
