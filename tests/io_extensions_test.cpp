// Tests for the I/O and selection extensions: GraphML import (Topology
// Zoo format), catalog CSV round-trips, downtime weighting, risk-aware
// BGP selection, and the CLI argument parser.
#include <gtest/gtest.h>

#include "bgp/risk_selection.h"
#include "hazard/catalog_io.h"
#include "population/census_io.h"
#include "hazard/duration.h"
#include "hazard/synthesis.h"
#include "topology/graphml.h"
#include "tools/args.h"
#include "util/error.h"

namespace riskroute {
namespace {

// ---------- GraphML ----------

constexpr const char* kZooSample = R"(<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <!-- Topology-Zoo-style sample -->
  <key attr.name="Latitude" attr.type="double" for="node" id="d29" />
  <key attr.name="Longitude" attr.type="double" for="node" id="d32" />
  <key attr.name="label" attr.type="string" for="node" id="d33" />
  <key attr.name="LinkLabel" attr.type="string" for="edge" id="e1" />
  <graph edgedefault="undirected">
    <node id="0">
      <data key="d33">Houston &amp; Co</data>
      <data key="d29">29.76</data>
      <data key="d32">-95.37</data>
    </node>
    <node id="1">
      <data key="d33">Atlanta</data>
      <data key="d29">33.75</data>
      <data key="d32">-84.39</data>
    </node>
    <node id="2">
      <data key="d33">Washington</data>
      <data key="d29">38.91</data>
      <data key="d32">-77.04</data>
    </node>
    <node id="3">
      <data key="d33">Hyper Node (no coords)</data>
    </node>
    <edge source="0" target="1">
      <data key="e1">OC-192</data>
    </edge>
    <edge source="1" target="2" />
    <edge source="2" target="3" />
    <edge source="0" target="0" />
  </graph>
</graphml>
)";

TEST(Graphml, ParsesTopologyZooSample) {
  topology::GraphmlOptions options;
  options.network_name = "Sample";
  options.kind = topology::NetworkKind::kTier1;
  const topology::Network net = topology::ParseGraphml(kZooSample, options);
  EXPECT_EQ(net.name(), "Sample");
  EXPECT_EQ(net.kind(), topology::NetworkKind::kTier1);
  // Hyper node dropped; 3 placed nodes survive.
  ASSERT_EQ(net.pop_count(), 3u);
  EXPECT_EQ(net.pop(0).name, "Houston & Co");  // entity unescaped
  EXPECT_NEAR(net.pop(0).location.latitude(), 29.76, 1e-9);
  EXPECT_NEAR(net.pop(0).location.longitude(), -95.37, 1e-9);
  // Edge to the dropped node and the self-loop are skipped.
  EXPECT_EQ(net.link_count(), 2u);
  EXPECT_TRUE(net.HasLink(0, 1));
  EXPECT_TRUE(net.HasLink(1, 2));
}

TEST(Graphml, CustomAttributeNames) {
  const std::string text = R"(<graphml>
    <key attr.name="lat" for="node" id="a"/>
    <key attr.name="lon" for="node" id="b"/>
    <graph>
      <node id="n0"><data key="a">40.0</data><data key="b">-100.0</data></node>
      <node id="n1"><data key="a">41.0</data><data key="b">-101.0</data></node>
      <edge source="n0" target="n1"/>
    </graph>
  </graphml>)";
  topology::GraphmlOptions options;
  options.latitude_attr = "lat";
  options.longitude_attr = "lon";
  const topology::Network net = topology::ParseGraphml(text, options);
  EXPECT_EQ(net.pop_count(), 2u);
  EXPECT_EQ(net.link_count(), 1u);
  // No label key: GraphML node ids become names.
  EXPECT_EQ(net.pop(0).name, "n0");
}

TEST(Graphml, Validation) {
  EXPECT_THROW((void)topology::ParseGraphml("<graphml></graphml>"),
               ParseError);
  EXPECT_THROW((void)topology::ParseGraphml(
                   "<graphml><key attr.name=\"Latitude\" for=\"node\" "
                   "id=\"a\"/><key attr.name=\"Longitude\" for=\"node\" "
                   "id=\"b\"/><graph><node/></graph></graphml>"),
               ParseError);  // node without id
  // Malformed attribute.
  EXPECT_THROW((void)topology::ParseGraphml("<graphml><key attr.name=>"),
               ParseError);
}

TEST(Graphml, RoundTripThroughRrtFormat) {
  // GraphML in, internal network out — must survive the library's own
  // serialization path too.
  const topology::Network net = topology::ParseGraphml(kZooSample);
  EXPECT_TRUE(net.IsConnected());
  EXPECT_GT(net.FootprintMiles(), 500.0);
}

// ---------- catalog CSV ----------

TEST(CatalogIo, RoundTrip) {
  std::vector<hazard::Catalog> original;
  util::Rng rng(5);
  original.push_back(hazard::Catalog(
      hazard::HazardType::kFemaHurricane,
      hazard::SampleMixture({{geo::GeoPoint(29.9, -90.1), 1.0, 80.0}}, 50,
                            rng)));
  original.push_back(hazard::Catalog(
      hazard::HazardType::kNoaaWind,
      hazard::SampleMixture({{geo::GeoPoint(40.0, -90.0), 1.0, 50.0}}, 30,
                            rng)));
  const std::string csv = hazard::CatalogsToCsv(original);
  const auto parsed = hazard::CatalogsFromCsv(csv);
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(parsed[c].type(), original[c].type());
    ASSERT_EQ(parsed[c].size(), original[c].size());
    for (std::size_t e = 0; e < parsed[c].size(); ++e) {
      EXPECT_NEAR(parsed[c].events()[e].location.latitude(),
                  original[c].events()[e].location.latitude(), 1e-5);
      EXPECT_EQ(parsed[c].events()[e].year, original[c].events()[e].year);
      EXPECT_EQ(parsed[c].events()[e].month, original[c].events()[e].month);
    }
  }
}

TEST(CatalogIo, RejectsMalformedInput) {
  EXPECT_THROW((void)hazard::CatalogsFromCsv(""), ParseError);
  EXPECT_THROW((void)hazard::CatalogsFromCsv("wrong,header\n"), ParseError);
  const std::string good_header = "type,latitude,longitude,year,month\n";
  EXPECT_THROW((void)hazard::CatalogsFromCsv(good_header +
                                             "FEMA Meteor,30,-90,2000,5\n"),
               ParseError);
  EXPECT_THROW((void)hazard::CatalogsFromCsv(good_header +
                                             "FEMA Storm,30,-90,2000,13\n"),
               ParseError);
  EXPECT_THROW((void)hazard::CatalogsFromCsv(good_header +
                                             "FEMA Storm,999,-90,2000,5\n"),
               ParseError);
}

TEST(CensusIo, RoundTrip) {
  population::CensusOptions options;
  options.block_count = 500;
  const population::CensusModel original =
      population::CensusModel::Synthesize(options);
  const population::CensusModel parsed =
      population::CensusFromCsv(population::CensusToCsv(original));
  ASSERT_EQ(parsed.block_count(), original.block_count());
  EXPECT_NEAR(parsed.total_population(), original.total_population(), 1.0);
  EXPECT_EQ(parsed.blocks()[7].state, original.blocks()[7].state);
  EXPECT_NEAR(parsed.blocks()[7].centroid.latitude(),
              original.blocks()[7].centroid.latitude(), 1e-5);
}

TEST(CensusIo, RejectsMalformedInput) {
  EXPECT_THROW((void)population::CensusFromCsv(""), ParseError);
  const std::string header = "latitude,longitude,population,state\n";
  EXPECT_THROW((void)population::CensusFromCsv(header), ParseError);
  EXPECT_THROW(
      (void)population::CensusFromCsv(header + "30,-90,-5,LA\n"),
      ParseError);
  EXPECT_THROW(
      (void)population::CensusFromCsv(header + "999,-90,10,LA\n"),
      ParseError);
}

// ---------- downtime weighting ----------

TEST(Duration, HurricanesDominateWind) {
  EXPECT_GT(hazard::ExpectedOutageHours(hazard::HazardType::kFemaHurricane),
            10 * hazard::ExpectedOutageHours(hazard::HazardType::kNoaaWind));
}

TEST(Duration, WeightsMeanOne) {
  const auto catalogs = hazard::SynthesizeAllCatalogs(11);
  hazard::HistoricalRiskField field(catalogs, hazard::PaperBandwidths());
  const auto weights = hazard::DowntimeWeights(field);
  ASSERT_EQ(weights.size(), field.model_count());
  double sum = 0.0;
  for (const double w : weights) sum += w;
  EXPECT_NEAR(sum / weights.size(), 1.0, 1e-12);
}

TEST(Duration, WeightingShiftsRiskTowardHurricaneCountry) {
  const auto catalogs = hazard::SynthesizeAllCatalogs(11);
  hazard::HistoricalRiskField plain(catalogs, hazard::PaperBandwidths());
  hazard::HistoricalRiskField weighted(catalogs, hazard::PaperBandwidths());
  hazard::ApplyDowntimeWeighting(weighted);
  const geo::GeoPoint gulf(29.95, -90.07);     // hurricane country
  const geo::GeoPoint plains(41.0, -96.5);     // wind/storm country
  const double gulf_gain = weighted.RiskAt(gulf) / plain.RiskAt(gulf);
  const double plains_gain = weighted.RiskAt(plains) / plain.RiskAt(plains);
  EXPECT_GT(gulf_gain, plains_gain);
}

// ---------- risk-aware BGP selection ----------

TEST(RiskSelection, RouteRiskSumsTraversedAses) {
  const std::vector<double> risk = {0.5, 0.1, 0.9, 0.2};
  bgp::Route route;
  route.as_path = {0, 2, 3};
  EXPECT_DOUBLE_EQ(bgp::RouteRisk(route, risk), 0.9 + 0.2);
  route.as_path = {1, 0};
  EXPECT_DOUBLE_EQ(bgp::RouteRisk(route, risk), 0.5);
  route.as_path = {0, 9};
  EXPECT_THROW((void)bgp::RouteRisk(route, risk), InvalidArgument);
}

TEST(RiskSelection, PolicyClassStillDominates) {
  std::vector<bgp::Route> alternates = {
      {{0, 1, 9}, bgp::NeighborRole::kProvider},  // safe but provider
      {{0, 2, 9}, bgp::NeighborRole::kCustomer},  // risky but customer
  };
  const std::vector<double> risk = {0.0, 0.0, 10.0, 0, 0, 0, 0, 0, 0, 0.0};
  bgp::RankAlternatesByRisk(alternates, risk);
  EXPECT_EQ(alternates.front().learned_from, bgp::NeighborRole::kCustomer);
}

TEST(RiskSelection, WithinClassLowerRiskWins) {
  std::vector<bgp::Route> alternates = {
      {{0, 2, 9}, bgp::NeighborRole::kPeer},  // risk 10
      {{0, 1, 9}, bgp::NeighborRole::kPeer},  // risk 0
  };
  std::vector<double> risk(10, 0.0);
  risk[2] = 10.0;
  bgp::RankAlternatesByRisk(alternates, risk);
  EXPECT_EQ(alternates.front().next_hop(), 1u);
}

// ---------- CLI args ----------

TEST(Args, ParsesOptionsAndPositionals) {
  // A flag followed by another "--" option stays boolean; a flag followed
  // by a bare token consumes it as a value, so positionals go first.
  const char* argv[] = {"prog", "route",   "extra", "--network",
                        "Level3", "--geojson", "--lambda-h", "1e5"};
  const cli::Args args(8, const_cast<char**>(argv), 2);
  EXPECT_EQ(args.GetOr("network", "x"), "Level3");
  EXPECT_TRUE(args.Has("geojson"));
  EXPECT_DOUBLE_EQ(args.GetDouble("lambda-h", 0), 1e5);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 7.0), 7.0);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra");
}

TEST(Args, NumericValidation) {
  const char* argv[] = {"prog", "cmd", "--trials", "abc"};
  const cli::Args args(4, const_cast<char**>(argv), 2);
  EXPECT_THROW((void)args.GetSize("trials", 1), InvalidArgument);
  EXPECT_THROW((void)args.GetDouble("trials", 1.0), InvalidArgument);
}

}  // namespace
}  // namespace riskroute
