// Tests for the provisioning analyses (paper Section 6.3): candidate-link
// enumeration with the >50% bit-mile filter, greedy augmentation (Eq 4),
// and peering recommendations.
#include <gtest/gtest.h>

#include "core/interdomain.h"
#include "core/riskroute.h"
#include "geo/distance.h"
#include "hazard/risk_field.h"
#include "hazard/synthesis.h"
#include "population/assignment.h"
#include "population/census.h"
#include "provision/augmentation.h"
#include "provision/candidate_links.h"
#include "provision/peering.h"
#include "util/error.h"

namespace riskroute::provision {
namespace {

using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;

/// A 5-node "C"-shaped chain: closing the ends is a huge mile saver.
///
///   0 -- 1 -- 2 -- 3 -- 4       with 0 and 4 geographically close.
RiskGraph ChainGraph() {
  RiskGraph graph;
  graph.AddNode(RiskNode{"W0", geo::GeoPoint(32.0, -98.0), 0.2, 0.0, 0.0});
  graph.AddNode(RiskNode{"N1", geo::GeoPoint(39.0, -97.0), 0.2, 0.05, 0.0});
  graph.AddNode(RiskNode{"N2", geo::GeoPoint(40.0, -94.5), 0.2, 0.08, 0.0});
  graph.AddNode(RiskNode{"N3", geo::GeoPoint(39.0, -92.0), 0.2, 0.05, 0.0});
  graph.AddNode(RiskNode{"E4", geo::GeoPoint(32.0, -91.0), 0.2, 0.0, 0.0});
  for (std::size_t i = 0; i + 1 < 5; ++i) graph.AddEdgeByDistance(i, i + 1);
  return graph;
}

TEST(CandidateLinks, FindsTheObviousClosure) {
  const RiskGraph graph = ChainGraph();
  const auto candidates = EnumerateCandidateLinks(graph);
  // 0 <-> 4 must qualify: the direct line is far below half the chain.
  bool found = false;
  for (const CandidateLink& c : candidates) {
    EXPECT_FALSE(graph.HasEdge(c.a, c.b));
    EXPECT_LT(c.direct_miles, 0.5 * c.current_path_miles);
    if (c.a == 0 && c.b == 4) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CandidateLinks, AdjacentPairsNeverCandidates) {
  const RiskGraph graph = ChainGraph();
  for (const CandidateLink& c : EnumerateCandidateLinks(graph)) {
    EXPECT_FALSE(graph.HasEdge(c.a, c.b));
    EXPECT_LT(c.a, c.b);
  }
}

TEST(CandidateLinks, ThresholdIsRespected) {
  const RiskGraph graph = ChainGraph();
  CandidateOptions strict;
  strict.min_mile_reduction = 0.95;  // near-impossible saving
  EXPECT_TRUE(EnumerateCandidateLinks(graph, strict).empty());
  CandidateOptions loose;
  loose.min_mile_reduction = 0.05;
  EXPECT_GE(EnumerateCandidateLinks(graph, loose).size(),
            EnumerateCandidateLinks(graph).size());
}

TEST(CandidateLinks, MaxCandidatesKeepsBiggestSavers) {
  const RiskGraph graph = ChainGraph();
  CandidateOptions options;
  options.min_mile_reduction = 0.05;
  const auto all = EnumerateCandidateLinks(graph, options);
  ASSERT_GE(all.size(), 2u);
  options.max_candidates = 1;
  const auto capped = EnumerateCandidateLinks(graph, options);
  ASSERT_EQ(capped.size(), 1u);
  double best_saving = 0.0;
  for (const CandidateLink& c : all) {
    best_saving =
        std::max(best_saving, c.current_path_miles - c.direct_miles);
  }
  EXPECT_NEAR(capped[0].current_path_miles - capped[0].direct_miles,
              best_saving, 1e-9);
}

TEST(Augmentation, SingleLinkReducesObjective) {
  const RiskGraph graph = ChainGraph();
  AugmentationOptions options;
  options.links_to_add = 1;
  const AugmentationResult result =
      GreedyAugment(graph, RiskParams{1e4, 0}, options);
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_LT(result.steps[0].bit_risk_miles, result.original_bit_risk_miles);
  EXPECT_LT(result.steps[0].fraction_of_original, 1.0);
  EXPECT_GT(result.steps[0].fraction_of_original, 0.0);
}

TEST(Augmentation, GreedyStepsMonotoneDecreasing) {
  const RiskGraph graph = ChainGraph();
  AugmentationOptions options;
  options.links_to_add = 3;
  options.candidates.min_mile_reduction = 0.2;
  const AugmentationResult result =
      GreedyAugment(graph, RiskParams{1e4, 0}, options);
  double previous = result.original_bit_risk_miles;
  for (const AugmentationStep& step : result.steps) {
    EXPECT_LT(step.bit_risk_miles, previous + 1e-9);
    previous = step.bit_risk_miles;
  }
}

TEST(Augmentation, FirstLinkIsTheBestSingleAddition) {
  const RiskGraph graph = ChainGraph();
  const RiskParams params{1e4, 0};
  AugmentationOptions options;
  options.links_to_add = 1;
  options.candidates.min_mile_reduction = 0.2;
  const AugmentationResult result = GreedyAugment(graph, params, options);
  ASSERT_EQ(result.steps.size(), 1u);
  // Exhaustively verify optimality over the candidate set (Eq 4).
  for (const CandidateLink& c :
       EnumerateCandidateLinks(graph, options.candidates)) {
    RiskGraph probe = graph;
    probe.AddEdge(c.a, c.b, c.direct_miles);
    EXPECT_GE(core::AggregateMinBitRisk(probe, params),
              result.steps[0].bit_risk_miles - 1e-9);
  }
}

TEST(Augmentation, CallerGraphUnchanged) {
  const RiskGraph graph = ChainGraph();
  const std::size_t edges_before = graph.directed_edge_count();
  AugmentationOptions options;
  options.links_to_add = 2;
  (void)GreedyAugment(graph, RiskParams{1e4, 0}, options);
  EXPECT_EQ(graph.directed_edge_count(), edges_before);
}

TEST(Augmentation, StopsWhenNoCandidateHelps) {
  // Fully meshed triangle: no candidate links exist at all.
  RiskGraph graph;
  graph.AddNode(RiskNode{"A", geo::GeoPoint(30, -95), 0.3, 0, 0});
  graph.AddNode(RiskNode{"B", geo::GeoPoint(31, -94), 0.3, 0, 0});
  graph.AddNode(RiskNode{"C", geo::GeoPoint(32, -95), 0.4, 0, 0});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) graph.AddEdgeByDistance(i, j);
  }
  AugmentationOptions options;
  options.links_to_add = 5;
  const AugmentationResult result =
      GreedyAugment(graph, RiskParams{1e4, 0}, options);
  EXPECT_TRUE(result.steps.empty());
}

TEST(Augmentation, Validation) {
  const RiskGraph graph = ChainGraph();
  AugmentationOptions options;
  options.links_to_add = 0;
  EXPECT_THROW((void)GreedyAugment(graph, RiskParams{}, options),
               InvalidArgument);
}

// ---------- peering ----------

struct PeeringFixture {
  topology::Corpus corpus;
  std::unique_ptr<population::CensusModel> census;
  std::unique_ptr<hazard::HistoricalRiskField> field;
  std::vector<population::ImpactModel> impacts;

  PeeringFixture() {
    using topology::Network;
    using topology::NetworkKind;
    // Two tier-1s and one regional. The regional peers with SlowNet only;
    // FastNet is co-located and is the obvious recommendation.
    Network fast("FastNet", NetworkKind::kTier1);
    fast.AddPop({"Dallas, TX", geo::GeoPoint(32.78, -96.80)});
    fast.AddPop({"Memphis, TN", geo::GeoPoint(35.15, -90.05)});
    fast.AddPop({"Atlanta, GA", geo::GeoPoint(33.75, -84.39)});
    fast.AddLink(0, 1);
    fast.AddLink(1, 2);

    Network slow("SlowNet", NetworkKind::kTier1);
    slow.AddPop({"Dallas, TX", geo::GeoPoint(32.79, -96.81)});
    slow.AddPop({"Denver, CO", geo::GeoPoint(39.74, -104.99)});
    slow.AddPop({"Chicago, IL", geo::GeoPoint(41.88, -87.63)});
    slow.AddPop({"Atlanta, GA", geo::GeoPoint(33.76, -84.40)});
    slow.AddLink(0, 1);
    slow.AddLink(1, 2);
    slow.AddLink(2, 3);

    Network reg("Metro", NetworkKind::kRegional);
    reg.AddPop({"Dallas, TX", geo::GeoPoint(32.80, -96.79)});
    reg.AddPop({"Houston, TX", geo::GeoPoint(29.76, -95.37)});
    reg.AddLink(0, 1);

    Network far_reg("Coastal", NetworkKind::kRegional);
    far_reg.AddPop({"Atlanta, GA", geo::GeoPoint(33.77, -84.38)});
    far_reg.AddPop({"Savannah, GA", geo::GeoPoint(32.08, -81.09)});
    far_reg.AddLink(0, 1);

    corpus.AddNetwork(std::move(fast));
    corpus.AddNetwork(std::move(slow));
    corpus.AddNetwork(std::move(reg));
    corpus.AddNetwork(std::move(far_reg));
    corpus.AddPeering(0, 1);  // tier-1 mesh
    corpus.AddPeering(1, 2);  // Metro -> SlowNet
    corpus.AddPeering(0, 3);  // Coastal -> FastNet

    population::CensusOptions census_options;
    census_options.block_count = 20000;
    census = std::make_unique<population::CensusModel>(
        population::CensusModel::Synthesize(census_options));

    util::Rng rng(8);
    std::vector<hazard::Catalog> catalogs;
    catalogs.emplace_back(
        hazard::HazardType::kFemaStorm,
        hazard::SampleMixture({{geo::GeoPoint(34.0, -92.0), 1.0, 200.0}}, 500,
                              rng));
    field = std::make_unique<hazard::HistoricalRiskField>(
        catalogs, std::vector<double>{60.0});
    for (std::size_t n = 0; n < corpus.network_count(); ++n) {
      impacts.push_back(
          population::ImpactModel::Build(corpus.network(n), *census));
    }
  }
};

TEST(Peering, CandidatesExcludeExistingPeersAndSelf) {
  PeeringFixture f;
  const auto candidates = EnumerateCandidatePeers(f.corpus, 2, 25.0);
  // Metro (index 2) peers with SlowNet already; FastNet is co-located in
  // Dallas and not yet a peer -> exactly one candidate.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].network, 0u);
  ASSERT_FALSE(candidates[0].pairs.empty());
  EXPECT_LE(candidates[0].pairs[0].miles, 25.0);
}

TEST(Peering, NoCandidatesWhenNothingColocated) {
  PeeringFixture f;
  // Coastal's PoPs are not within 25 miles of SlowNet?  Atlanta is. Use a
  // tiny radius to force emptiness.
  const auto candidates = EnumerateCandidatePeers(f.corpus, 3, 0.1);
  EXPECT_TRUE(candidates.empty());
}

TEST(Peering, RecommendationImprovesObjective) {
  PeeringFixture f;
  core::MergedGraph merged = core::BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const auto recommendation =
      RecommendPeering(merged, f.corpus, 2, RiskParams{1e5, 0});
  ASSERT_NE(recommendation.best(), nullptr);
  EXPECT_EQ(recommendation.best()->peer.network, 0u);
  EXPECT_LE(recommendation.best()->objective,
            recommendation.baseline_objective + 1e-9);
}

TEST(Peering, MergedGraphRestoredAfterEvaluation) {
  PeeringFixture f;
  core::MergedGraph merged = core::BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const std::size_t edges_before = merged.graph.directed_edge_count();
  (void)RecommendPeering(merged, f.corpus, 2, RiskParams{1e5, 0});
  EXPECT_EQ(merged.graph.directed_edge_count(), edges_before);
}

TEST(Peering, EvaluationsSortedByObjective) {
  PeeringFixture f;
  core::MergedGraph merged = core::BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const auto recommendation =
      RecommendPeering(merged, f.corpus, 3, RiskParams{1e5, 0});
  for (std::size_t i = 1; i < recommendation.evaluations.size(); ++i) {
    EXPECT_LE(recommendation.evaluations[i - 1].objective,
              recommendation.evaluations[i].objective);
  }
}

TEST(Peering, IndexValidation) {
  PeeringFixture f;
  EXPECT_THROW((void)EnumerateCandidatePeers(f.corpus, 99, 25.0),
               InvalidArgument);
}

}  // namespace
}  // namespace riskroute::provision
