// Unit tests for the population module: census synthesis structure and the
// nearest-neighbour impact assignment of Section 5.1.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/conus.h"
#include "geo/distance.h"
#include "population/assignment.h"
#include "population/census.h"
#include "topology/network.h"
#include "util/error.h"

namespace riskroute::population {
namespace {

CensusOptions SmallCensus(std::size_t blocks = 20000) {
  CensusOptions options;
  options.block_count = blocks;
  return options;
}

TEST(Census, BlockCountMatchesRequest) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus(5000));
  EXPECT_EQ(census.block_count(), 5000u);
}

TEST(Census, DefaultMatchesPaperBlockCount) {
  CensusOptions options;
  EXPECT_EQ(options.block_count, 215932u);  // Section 4.2
}

TEST(Census, TotalPopulationNormalized) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  EXPECT_NEAR(census.total_population(), 306e6, 1e3);
}

TEST(Census, AllBlocksInsideConus) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus(5000));
  for (const CensusBlock& block : census.blocks()) {
    EXPECT_TRUE(geo::InConus(block.centroid));
    EXPECT_GT(block.population, 0.0);
    EXPECT_EQ(block.state.size(), 2u);
  }
}

TEST(Census, Deterministic) {
  const CensusModel a = CensusModel::Synthesize(SmallCensus(2000));
  const CensusModel b = CensusModel::Synthesize(SmallCensus(2000));
  ASSERT_EQ(a.block_count(), b.block_count());
  for (std::size_t i = 0; i < a.block_count(); ++i) {
    EXPECT_EQ(a.blocks()[i].centroid, b.blocks()[i].centroid);
    EXPECT_DOUBLE_EQ(a.blocks()[i].population, b.blocks()[i].population);
  }
}

TEST(Census, UrbanConcentration) {
  // Population within 60 miles of NYC must far exceed population within
  // 60 miles of an empty patch of Nevada.
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  const geo::GeoPoint nyc(40.71, -74.01);
  const geo::GeoPoint nowhere_nv(40.0, -117.5);
  double near_nyc = 0.0, near_nowhere = 0.0;
  for (const CensusBlock& block : census.blocks()) {
    if (geo::GreatCircleMiles(block.centroid, nyc) < 60) {
      near_nyc += block.population;
    }
    if (geo::GreatCircleMiles(block.centroid, nowhere_nv) < 60) {
      near_nowhere += block.population;
    }
  }
  EXPECT_GT(near_nyc, 20 * (near_nowhere + 1.0));
}

TEST(Census, PopulationInStates) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  const double everything = census.PopulationInStates({});
  const double texas = census.PopulationInStates({"TX"});
  const double texas_and_ca = census.PopulationInStates({"TX", "CA"});
  EXPECT_DOUBLE_EQ(everything, census.total_population());
  EXPECT_GT(texas, 0.0);
  EXPECT_GT(texas_and_ca, texas);
  EXPECT_LT(texas_and_ca, everything);
}

TEST(Census, WrappingConstructorValidation) {
  EXPECT_THROW(CensusModel(std::vector<CensusBlock>{}), InvalidArgument);
}

// ---------- PoP-name state extraction ----------

TEST(StateOfPopName, ExtractsFromStandardNames) {
  EXPECT_EQ(StateOfPopName("Houston, TX"), "TX");
  EXPECT_EQ(StateOfPopName("St. Louis, MO"), "MO");
  EXPECT_EQ(StateOfPopName("Jackson, MS Metro 3"), "MS");
  EXPECT_EQ(StateOfPopName("no state here"), "");
  EXPECT_EQ(StateOfPopName(""), "");
  EXPECT_EQ(StateOfPopName("Weird, TXX"), "");
}

TEST(NetworkStates, CollectsSortedUniqueStates) {
  topology::Network net("n", topology::NetworkKind::kRegional);
  net.AddPop({"A, TX", geo::GeoPoint(30, -95)});
  net.AddPop({"B, LA", geo::GeoPoint(30, -91)});
  net.AddPop({"C, TX Metro 1", geo::GeoPoint(31, -95)});
  EXPECT_EQ(NetworkStates(net), (std::vector<std::string>{"LA", "TX"}));
}

// ---------- impact model ----------

topology::Network TwoCityNetwork() {
  topology::Network net("two", topology::NetworkKind::kTier1);
  net.AddPop({"New York, NY", geo::GeoPoint(40.71, -74.01)});
  net.AddPop({"Billings, MT", geo::GeoPoint(45.78, -108.50)});
  net.AddLink(0, 1);
  return net;
}

TEST(ImpactModel, FractionsSumToOneForNationalNetwork) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  const topology::Network net = TwoCityNetwork();
  const ImpactModel impact = ImpactModel::Build(net, census);
  EXPECT_NEAR(impact.fraction(0) + impact.fraction(1), 1.0, 1e-9);
  EXPECT_NEAR(impact.considered_population(), census.total_population(), 1e-3);
}

TEST(ImpactModel, BigCityServesMorePopulation) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  const ImpactModel impact = ImpactModel::Build(TwoCityNetwork(), census);
  // NYC PoP covers the dense east; Billings covers the sparse mountain
  // west. East must dominate.
  EXPECT_GT(impact.fraction(0), impact.fraction(1));
  EXPECT_GT(impact.fraction(0), 0.5);
}

TEST(ImpactModel, AlphaIsSumOfFractions) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  const ImpactModel impact = ImpactModel::Build(TwoCityNetwork(), census);
  EXPECT_DOUBLE_EQ(impact.Alpha(0, 1),
                   impact.fraction(0) + impact.fraction(1));
  EXPECT_DOUBLE_EQ(impact.Alpha(0, 0), 2 * impact.fraction(0));
}

TEST(ImpactModel, RegionalNetworksConfinedToOwnStates) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  topology::Network net("ms-only", topology::NetworkKind::kRegional);
  net.AddPop({"Jackson, MS", geo::GeoPoint(32.30, -90.18)});
  net.AddPop({"Gulfport, MS", geo::GeoPoint(30.37, -89.09)});
  net.AddLink(0, 1);
  const ImpactModel impact = ImpactModel::Build(net, census);
  // Considered population == Mississippi population, not the whole US.
  EXPECT_NEAR(impact.considered_population(),
              census.PopulationInStates({"MS"}), 1e-6);
  EXPECT_LT(impact.considered_population(), census.total_population() * 0.1);
  EXPECT_NEAR(impact.fraction(0) + impact.fraction(1), 1.0, 1e-9);
}

TEST(ImpactModel, Tier1IgnoresStateConfinement) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  topology::Network net("tier1-ms", topology::NetworkKind::kTier1);
  net.AddPop({"Jackson, MS", geo::GeoPoint(32.30, -90.18)});
  net.AddPop({"Gulfport, MS", geo::GeoPoint(30.37, -89.09)});
  net.AddLink(0, 1);
  const ImpactModel impact = ImpactModel::Build(net, census);
  EXPECT_NEAR(impact.considered_population(), census.total_population(), 1e-3);
}

TEST(ImpactModel, IndexValidation) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus(2000));
  const ImpactModel impact = ImpactModel::Build(TwoCityNetwork(), census);
  EXPECT_THROW((void)impact.fraction(2), InvalidArgument);
  EXPECT_THROW((void)impact.served_population(2), InvalidArgument);
}

TEST(ImpactModel, ServedPopulationConsistentWithFractions) {
  const CensusModel census = CensusModel::Synthesize(SmallCensus());
  const ImpactModel impact = ImpactModel::Build(TwoCityNetwork(), census);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(impact.served_population(i),
                impact.fraction(i) * impact.considered_population(), 1e-6);
  }
}

}  // namespace
}  // namespace riskroute::population
