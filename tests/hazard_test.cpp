// Unit tests for the hazard module: catalogs, the regional synthesizers
// (Figure 4's qualitative geography), and the aggregate risk field with
// calibration.
#include <gtest/gtest.h>

#include <algorithm>

#include "geo/conus.h"
#include "geo/distance.h"
#include "hazard/catalog.h"
#include "hazard/risk_field.h"
#include "hazard/synthesis.h"
#include "topology/network.h"
#include "util/error.h"

namespace riskroute::hazard {
namespace {

TEST(Catalog, PaperEventCounts) {
  // Section 4.3's exact archive sizes.
  EXPECT_EQ(PaperEventCount(HazardType::kFemaHurricane), 2805u);
  EXPECT_EQ(PaperEventCount(HazardType::kFemaTornado), 6437u);
  EXPECT_EQ(PaperEventCount(HazardType::kFemaStorm), 20623u);
  EXPECT_EQ(PaperEventCount(HazardType::kNoaaEarthquake), 2267u);
  EXPECT_EQ(PaperEventCount(HazardType::kNoaaWind), 143847u);
}

TEST(Catalog, NamesRoundTrip) {
  for (const HazardType type : AllHazardTypes()) {
    EXPECT_EQ(ParseHazardType(ToString(type)), type);
  }
  EXPECT_FALSE(ParseHazardType("FEMA Meteor").has_value());
}

TEST(Catalog, RejectsEmpty) {
  EXPECT_THROW(Catalog(HazardType::kFemaStorm, {}), InvalidArgument);
}

TEST(Catalog, FilterYears) {
  std::vector<Event> events = {{geo::GeoPoint(30, -90), 1975},
                               {geo::GeoPoint(31, -91), 1985},
                               {geo::GeoPoint(32, -92), 2005}};
  const Catalog catalog(HazardType::kFemaStorm, events);
  EXPECT_EQ(catalog.FilterYears(1980, 2000).size(), 1u);
  EXPECT_EQ(catalog.FilterYears(1970, 2010).size(), 3u);
}

TEST(Synthesis, CatalogsHavePaperCountsAndConusEvents) {
  for (const Catalog& catalog : SynthesizeAllCatalogs(11)) {
    EXPECT_EQ(catalog.size(), PaperEventCount(catalog.type()))
        << ToString(catalog.type());
    // Spot-check a sample for CONUS containment and valid years.
    for (std::size_t i = 0; i < catalog.size(); i += 97) {
      const Event& event = catalog.events()[i];
      EXPECT_TRUE(geo::InConus(event.location))
          << ToString(catalog.type()) << " event " << i;
      EXPECT_GE(event.year, 1970);
      EXPECT_LE(event.year, 2010);
    }
  }
}

TEST(Synthesis, Deterministic) {
  const Catalog a = SynthesizeCatalog(HazardType::kFemaHurricane, 5);
  const Catalog b = SynthesizeCatalog(HazardType::kFemaHurricane, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 13) {
    EXPECT_EQ(a.events()[i].location, b.events()[i].location);
  }
}

/// Fraction of a catalog's events within `radius` miles of a point.
double FractionNear(const Catalog& catalog, const geo::GeoPoint& p,
                    double radius) {
  std::size_t near = 0;
  for (const Event& event : catalog.events()) {
    if (geo::GreatCircleMiles(event.location, p) <= radius) ++near;
  }
  return static_cast<double>(near) / static_cast<double>(catalog.size());
}

TEST(Synthesis, HurricanesHugTheCoasts) {
  const Catalog hurricanes = SynthesizeCatalog(HazardType::kFemaHurricane, 3);
  // Figure 4-A: Gulf coast prevalence; essentially nothing inland-west.
  EXPECT_GT(FractionNear(hurricanes, geo::GeoPoint(29.95, -90.07), 200), 0.10);
  EXPECT_LT(FractionNear(hurricanes, geo::GeoPoint(39.74, -104.99), 300), 0.01);
}

TEST(Synthesis, TornadoesInTheAlley) {
  const Catalog tornadoes = SynthesizeCatalog(HazardType::kFemaTornado, 3);
  EXPECT_GT(FractionNear(tornadoes, geo::GeoPoint(35.47, -97.52), 250), 0.15);
  EXPECT_LT(FractionNear(tornadoes, geo::GeoPoint(47.61, -122.33), 300), 0.01);
}

TEST(Synthesis, EarthquakesDominateTheWest) {
  const Catalog quakes = SynthesizeCatalog(HazardType::kNoaaEarthquake, 3);
  const double west = FractionNear(quakes, geo::GeoPoint(36.5, -119.5), 500);
  const double southeast = FractionNear(quakes, geo::GeoPoint(32.0, -83.0), 500);
  EXPECT_GT(west, 3 * (southeast + 0.001));
}

TEST(Synthesis, WindEventsFormTightClusters) {
  const Catalog wind = SynthesizeCatalog(HazardType::kNoaaWind, 3);
  // Median nearest-event distance must be a few miles (the basis for the
  // small Table 1 wind bandwidth). Sample pairs cheaply.
  std::size_t close_pairs = 0, sampled = 0;
  for (std::size_t i = 0; i + 1 < wind.size(); i += 401) {
    double best = 1e9;
    for (std::size_t j = std::max<std::size_t>(1, i) - 1;
         j < std::min(wind.size(), i + 400); ++j) {
      if (j == i) continue;
      best = std::min(best, geo::GreatCircleMiles(wind.events()[i].location,
                                                  wind.events()[j].location));
    }
    ++sampled;
    if (best < 20.0) ++close_pairs;
  }
  EXPECT_GT(static_cast<double>(close_pairs) / static_cast<double>(sampled),
            0.5);
}

TEST(Synthesis, MixtureValidation) {
  util::Rng rng(1);
  EXPECT_THROW((void)SampleMixture({}, 10, rng), InvalidArgument);
}

// ---------- risk field ----------

std::vector<Catalog> TinyCatalogs() {
  util::Rng rng(3);
  std::vector<Catalog> catalogs;
  catalogs.emplace_back(
      HazardType::kFemaHurricane,
      SampleMixture({{geo::GeoPoint(29.9, -90.1), 1.0, 60.0}}, 300, rng));
  catalogs.emplace_back(
      HazardType::kNoaaEarthquake,
      SampleMixture({{geo::GeoPoint(37.0, -120.0), 1.0, 80.0}}, 300, rng));
  return catalogs;
}

TEST(RiskField, SumsPerHazardDensities) {
  const auto catalogs = TinyCatalogs();
  const HistoricalRiskField field(catalogs, {50.0, 50.0});
  const geo::GeoPoint p(30.5, -90.5);
  EXPECT_NEAR(field.RiskAt(p),
              field.RiskAt(p, HazardType::kFemaHurricane) +
                  field.RiskAt(p, HazardType::kNoaaEarthquake),
              1e-15);
}

TEST(RiskField, RegionalSeparation) {
  const HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  // Near New Orleans, hurricane risk dominates; near Fresno, earthquake.
  const geo::GeoPoint nola(29.95, -90.07), fresno(36.75, -119.77);
  EXPECT_GT(field.RiskAt(nola, HazardType::kFemaHurricane),
            field.RiskAt(nola, HazardType::kNoaaEarthquake));
  EXPECT_GT(field.RiskAt(fresno, HazardType::kNoaaEarthquake),
            field.RiskAt(fresno, HazardType::kFemaHurricane));
}

TEST(RiskField, Validation) {
  EXPECT_THROW(HistoricalRiskField({}, {}), InvalidArgument);
  EXPECT_THROW(HistoricalRiskField(TinyCatalogs(), {50.0}), InvalidArgument);
  const HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  EXPECT_THROW((void)field.RiskAt(geo::GeoPoint(30, -90),
                                  HazardType::kFemaTornado),
               InvalidArgument);
  EXPECT_THROW((void)field.model(5), InvalidArgument);
}

TEST(RiskField, CalibrationHitsTarget) {
  HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  const std::vector<geo::GeoPoint> reference = {
      geo::GeoPoint(29.95, -90.07), geo::GeoPoint(36.75, -119.77),
      geo::GeoPoint(40.0, -100.0)};
  field.CalibrateTo(reference, 0.25);
  double mean = 0.0;
  for (const auto& p : reference) mean += field.RiskAt(p);
  mean /= reference.size();
  EXPECT_NEAR(mean, 0.25, 1e-9);
  EXPECT_GT(field.scale(), 0.0);
}

TEST(RiskField, CalibrationValidation) {
  HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  EXPECT_THROW(field.CalibrateTo({}, 0.1), InvalidArgument);
  EXPECT_THROW(field.CalibrateTo({geo::GeoPoint(30, -90)}, -1.0),
               InvalidArgument);
}

TEST(RiskField, RecalibrationIsIdempotentInEffect) {
  HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  const std::vector<geo::GeoPoint> reference = {geo::GeoPoint(29.95, -90.07),
                                                geo::GeoPoint(36.75, -119.77)};
  field.CalibrateTo(reference, 0.15);
  const double first = field.RiskAt(reference[0]);
  field.CalibrateTo(reference, 0.15);  // calibrating again must not drift
  EXPECT_NEAR(field.RiskAt(reference[0]), first, 1e-12);
}

TEST(RiskField, PopRisksMatchPerPopEvaluation) {
  const HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  topology::Network net("n", topology::NetworkKind::kRegional);
  net.AddPop({"A, LA", geo::GeoPoint(29.95, -90.07)});
  net.AddPop({"B, CA", geo::GeoPoint(36.75, -119.77)});
  const auto risks = field.PopRisks(net);
  ASSERT_EQ(risks.size(), 2u);
  EXPECT_DOUBLE_EQ(risks[0], field.RiskAt(net.pop(0).location));
  EXPECT_DOUBLE_EQ(risks[1], field.RiskAt(net.pop(1).location));
}

TEST(RiskField, RisksAtMatchesRiskAtBitwise) {
  HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  field.CalibrateTo({geo::GeoPoint(29.95, -90.07), geo::GeoPoint(37.0, -120.0)},
                    0.2);
  util::Rng rng(8);
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 50; ++i) {
    points.emplace_back(rng.Uniform(25, 49), rng.Uniform(-124, -67));
  }
  const std::vector<double> batch = field.RisksAt(points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batch[i], field.RiskAt(points[i])) << "point " << i;
  }
  std::vector<double> wrong_size(points.size() + 1);
  EXPECT_THROW(field.RisksAt(points, wrong_size), InvalidArgument);
}

TEST(RiskFieldCache, HitsReturnBitwiseIdenticalValues) {
  const HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  const RiskFieldCache cache(field);
  const geo::GeoPoint p(30.5, -90.5);
  const double direct = field.RiskAt(p);
  EXPECT_EQ(cache.RiskAt(p), direct);   // miss: evaluates and stores
  EXPECT_EQ(cache.RiskAt(p), direct);   // hit: must be the cached value
  EXPECT_EQ(cache.size(), 1u);
  // A nearby-but-distinct coordinate is a different key, not a collision.
  const geo::GeoPoint q(30.5, -90.5000001);
  EXPECT_EQ(cache.RiskAt(q), field.RiskAt(q));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RiskFieldCache, WarmPrepopulatesAndPopRisksMatchField) {
  const HistoricalRiskField field(TinyCatalogs(), {50.0, 50.0});
  const RiskFieldCache cache(field);
  topology::Network net("n", topology::NetworkKind::kRegional);
  net.AddPop({"A, LA", geo::GeoPoint(29.95, -90.07)});
  net.AddPop({"B, CA", geo::GeoPoint(36.75, -119.77)});
  net.AddPop({"C, KS", geo::GeoPoint(39.0, -98.0)});
  std::vector<geo::GeoPoint> locations;
  for (const topology::Pop& pop : net.pops()) locations.push_back(pop.location);
  cache.Warm(locations);
  EXPECT_EQ(cache.size(), 3u);
  const auto cached = cache.PopRisks(net);
  const auto fresh = field.PopRisks(net);
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(cached[i], fresh[i]) << "pop " << i;
  }
  EXPECT_EQ(cache.size(), 3u);  // PopRisks after Warm added nothing new
  EXPECT_EQ(&cache.field(), &field);
}

TEST(RiskField, PaperBandwidthsMatchTable1) {
  const auto bandwidths = PaperBandwidths();
  ASSERT_EQ(bandwidths.size(), 5u);
  EXPECT_DOUBLE_EQ(bandwidths[0], 71.56);
  EXPECT_DOUBLE_EQ(bandwidths[1], 59.48);
  EXPECT_DOUBLE_EQ(bandwidths[2], 24.38);
  EXPECT_DOUBLE_EQ(bandwidths[3], 298.82);
  EXPECT_DOUBLE_EQ(bandwidths[4], 3.59);
}

}  // namespace
}  // namespace riskroute::hazard
