// Engine snapshot tests: the versioned little-endian SoA format behind
// RouteEngine::SaveSnapshot / LoadSnapshot. The format is canonical — an
// accepted byte string is exactly what the writer produces — so
// round-trips are asserted byte-for-byte, and every class of hostile
// mutation must surface as a ParseDiagnostic, never as UB or a throw.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/route_engine.h"
#include "geo/geo_point.h"
#include "util/parse_result.h"
#include "util/rng.h"

namespace riskroute {
namespace {

using core::DijkstraWorkspace;
using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RouteEngine;
using core::RouteMetric;

constexpr RiskParams kParams{1e5, 1e3};

std::span<const std::uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

RiskGraph SampleGraph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  RiskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "pop-" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        rng.Uniform(0.01, 1.0), rng.Uniform(0.0, 0.5),
        rng.Chance(0.5) ? rng.Uniform(0.0, 50.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i + 3 < n; i += 3) graph.AddEdgeByDistance(i, i + 3);
  return graph;
}

TEST(SnapshotTest, RoundTripIsByteExactWithAndWithoutLandmarks) {
  const RiskGraph graph = SampleGraph(40, 17);
  RouteEngine engine(graph, kParams);
  for (const std::size_t landmarks : {std::size_t{0}, std::size_t{6}}) {
    if (landmarks != 0) engine.PrepareLandmarks(landmarks);
    const std::string bytes = engine.SnapshotBytes();
    auto loaded = RouteEngine::LoadSnapshot(AsBytes(bytes));
    ASSERT_TRUE(loaded.ok()) << loaded.error().Render();
    const RouteEngine& booted = loaded.value();
    // Canonical format: re-serializing the loaded engine reproduces the
    // input bytes exactly.
    EXPECT_EQ(booted.SnapshotBytes(), bytes);
    EXPECT_EQ(booted.node_count(), engine.node_count());
    EXPECT_EQ(booted.landmark_count(), landmarks);
  }
}

TEST(SnapshotTest, BootedEngineRoutesBitwiseIdentically) {
  const RiskGraph graph = SampleGraph(50, 23);
  RouteEngine engine(graph, kParams);
  engine.PrepareLandmarks(8);
  const std::string bytes = engine.SnapshotBytes();
  auto loaded = RouteEngine::LoadSnapshot(AsBytes(bytes));
  ASSERT_TRUE(loaded.ok()) << loaded.error().Render();
  const RouteEngine& booted = loaded.value();

  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    EXPECT_EQ(booted.node_name(v), engine.node_name(v));
    EXPECT_EQ(booted.NodeScore(v), engine.NodeScore(v));
    EXPECT_EQ(booted.impact_fraction(v), engine.impact_fraction(v));
  }
  std::vector<std::size_t> nodes(graph.node_count());
  std::iota(nodes.begin(), nodes.end(), std::size_t{0});
  const auto ref = engine.ComputeRatios(nodes, nodes);
  const auto got = booted.ComputeRatios(nodes, nodes);
  EXPECT_EQ(ref.risk_reduction_ratio, got.risk_reduction_ratio);
  EXPECT_EQ(ref.distance_increase_ratio, got.distance_increase_ratio);
  EXPECT_EQ(ref.pair_count, got.pair_count);

  DijkstraWorkspace ws_a;
  DijkstraWorkspace ws_b;
  engine.Run(ws_a, 0, engine.Alpha(0, 31), 31);
  booted.Run(ws_b, 0, booted.Alpha(0, 31), 31);
  EXPECT_EQ(ws_a.DistanceTo(31), ws_b.DistanceTo(31));
}

TEST(SnapshotTest, ForecastRisksSurviveTheRoundTrip) {
  const RiskGraph graph = SampleGraph(30, 29);
  RouteEngine engine(graph, kParams);
  std::vector<double> risks(graph.node_count());
  for (std::size_t i = 0; i < risks.size(); ++i) {
    risks[i] = static_cast<double>(i) * 0.75;
  }
  engine.SetForecastRisks(risks);
  const std::string bytes = engine.SnapshotBytes();
  auto loaded = RouteEngine::LoadSnapshot(AsBytes(bytes));
  ASSERT_TRUE(loaded.ok()) << loaded.error().Render();
  EXPECT_EQ(loaded.value().SnapshotBytes(), bytes);
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    EXPECT_EQ(loaded.value().NodeScore(v), engine.NodeScore(v));
  }
}

TEST(SnapshotTest, FileRoundTripMatchesInMemoryBytes) {
  const RiskGraph graph = SampleGraph(25, 31);
  RouteEngine engine(graph, kParams);
  engine.PrepareLandmarks(4);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "riskroute_snapshot_test.rre";
  engine.SaveSnapshotFile(path.string());
  auto loaded = RouteEngine::LoadSnapshotFile(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error().Render();
  EXPECT_EQ(loaded.value().SnapshotBytes(), engine.SnapshotBytes());
  std::ifstream in(path, std::ios::binary);
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, engine.SnapshotBytes());
  std::filesystem::remove(path);
}

TEST(SnapshotTest, HostileBytesSurfaceAsDiagnostics) {
  const RiskGraph graph = SampleGraph(20, 37);
  RouteEngine engine(graph, kParams);
  engine.PrepareLandmarks(3);
  const std::string good = engine.SnapshotBytes();

  const auto expect_rejected = [](const std::string& bytes,
                                  const char* label) {
    auto result = RouteEngine::LoadSnapshot(AsBytes(bytes));
    EXPECT_FALSE(result.ok()) << label;
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty()) << label;
    }
  };

  expect_rejected("", "empty input");
  expect_rejected(good.substr(0, 7), "shorter than the magic");
  expect_rejected(good.substr(0, 96), "header-only prefix");
  expect_rejected(good.substr(0, good.size() / 2), "truncated payload");
  expect_rejected(good + std::string(64, '\0'), "trailing bytes");

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, "corrupted magic");

  std::string bad_version = good;
  bad_version[8] = static_cast<char>(bad_version[8] + 1);
  expect_rejected(bad_version, "unknown version");

  // Any payload bit-flip must trip the checksum (or a structural check —
  // either way the loader rejects). Sweep a spread of offsets.
  for (std::size_t offset = 80; offset < good.size();
       offset += good.size() / 13 + 1) {
    std::string flipped = good;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x10);
    auto result = RouteEngine::LoadSnapshot(AsBytes(flipped));
    EXPECT_FALSE(result.ok()) << "bit flip at offset " << offset;
  }
}

TEST(SnapshotTest, ChecksumIsDeterministicAndPositionSensitive) {
  const std::string payload = "riskroute snapshot checksum probe";
  const auto bytes = AsBytes(payload);
  const std::uint64_t a = RouteEngine::SnapshotChecksum(bytes);
  const std::uint64_t b = RouteEngine::SnapshotChecksum(bytes);
  EXPECT_EQ(a, b);
  // Seed-chaining: hashing in two runs equals hashing the concatenation.
  const std::uint64_t head =
      RouteEngine::SnapshotChecksum(bytes.subspan(0, 10));
  EXPECT_EQ(RouteEngine::SnapshotChecksum(bytes.subspan(10), head), a);
  // Different content, different sum (FNV-1a mixes every byte).
  std::string swapped = payload;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(RouteEngine::SnapshotChecksum(AsBytes(swapped)), a);
}

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  const RiskGraph graph;
  RouteEngine engine(graph, kParams);
  const std::string bytes = engine.SnapshotBytes();
  auto loaded = RouteEngine::LoadSnapshot(AsBytes(bytes));
  ASSERT_TRUE(loaded.ok()) << loaded.error().Render();
  EXPECT_EQ(loaded.value().node_count(), 0u);
  EXPECT_EQ(loaded.value().SnapshotBytes(), bytes);
}

}  // namespace
}  // namespace riskroute
