// End-to-end integration tests: the Study facade assembles the full
// substrate stack (reduced census for speed) and the paper's headline
// qualitative results must hold on it.
#include <gtest/gtest.h>

#include "core/riskroute.h"
#include "core/route_engine.h"
#include "core/study.h"
#include "forecast/forecast_risk.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"
#include "population/assignment.h"
#include "util/thread_pool.h"

namespace riskroute::core {
namespace {

/// Shared, lazily built study with a reduced census (assembly cost is
/// dominated by the 215,932-block census; 30k blocks preserve structure).
const Study& SharedStudy() {
  static const Study study = [] {
    StudyOptions options;
    options.census.block_count = 30000;
    return Study::Build(options);
  }();
  return study;
}

TEST(Study, AssemblesPaperScaleCorpus) {
  const Study& study = SharedStudy();
  EXPECT_EQ(study.corpus().network_count(), 23u);
  EXPECT_EQ(study.corpus().TotalPops(), 809u);  // 354 tier-1 + 455 regional
  EXPECT_EQ(study.census().block_count(), 30000u);
}

TEST(Study, CalibrationHolds) {
  const Study& study = SharedStudy();
  const auto locations = study.AllPopLocations();
  double mean = 0.0;
  for (const auto& p : locations) mean += study.hazard_field().RiskAt(p);
  mean /= static_cast<double>(locations.size());
  EXPECT_NEAR(mean, hazard::kDefaultMeanPopRisk, 1e-9);
}

TEST(Study, ImpactFractionsNormalizedPerNetwork) {
  const Study& study = SharedStudy();
  for (std::size_t n = 0; n < study.corpus().network_count(); ++n) {
    const auto& impact = study.impact(n);
    double total = 0.0;
    for (std::size_t p = 0; p < study.corpus().network(n).pop_count(); ++p) {
      total += impact.fraction(p);
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << study.corpus().network(n).name();
  }
}

TEST(Study, GraphsMirrorNetworks) {
  const Study& study = SharedStudy();
  const RiskGraph graph = study.BuildGraphFor("Level3");
  const auto& level3 =
      study.corpus().network(study.NetworkIndex("Level3"));
  EXPECT_EQ(graph.node_count(), level3.pop_count());
  EXPECT_EQ(graph.directed_edge_count(), 2 * level3.link_count());
  EXPECT_THROW((void)study.BuildGraphFor("NoSuchNet"), InvalidArgument);
}

TEST(Integration, RiskRouteBeatsShortestPathInBitRiskEverywhere) {
  const Study& study = SharedStudy();
  util::ThreadPool pool;
  for (const char* name : {"Deutsche", "NTT", "Teliasonera"}) {
    const RiskGraph graph = study.BuildGraphFor(name);
    const RatioReport report =
        ComputeIntradomainRatios(graph, RiskParams{1e5, 1e3}, &pool);
    EXPECT_GE(report.risk_reduction_ratio, 0.0) << name;
    EXPECT_GE(report.distance_increase_ratio, 0.0) << name;
    EXPECT_GT(report.pair_count, 0u) << name;
  }
}

TEST(Integration, RatiosGrowWithLambda) {
  // The paper's Table 2 headline: raising lambda_h makes routing more
  // risk-averse — bit-risk falls further, mileage rises further.
  const Study& study = SharedStudy();
  util::ThreadPool pool;
  const RiskGraph graph = study.BuildGraphFor("Sprint");
  const RatioReport low =
      ComputeIntradomainRatios(graph, RiskParams{1e5, 1e3}, &pool);
  const RatioReport high =
      ComputeIntradomainRatios(graph, RiskParams{1e6, 1e3}, &pool);
  EXPECT_GT(high.risk_reduction_ratio, low.risk_reduction_ratio);
  EXPECT_GE(high.distance_increase_ratio, low.distance_increase_ratio);
}

TEST(Integration, Level3HasSmallestRiskReductionAmongTier1s) {
  // Paper: "the much larger Level3 network results in the smallest risk
  // reduction ratio" (its per-PoP impact fractions are tiny).
  const Study& study = SharedStudy();
  util::ThreadPool pool;
  const RatioReport level3 = ComputeIntradomainRatios(
      study.BuildGraphFor("Level3"), RiskParams{1e5, 1e3}, &pool);
  for (const char* other : {"ATT", "Sprint", "Teliasonera", "NTT"}) {
    const RatioReport report = ComputeIntradomainRatios(
        study.BuildGraphFor(other), RiskParams{1e5, 1e3}, &pool);
    EXPECT_LT(level3.risk_reduction_ratio,
              report.risk_reduction_ratio + 0.02)
        << other;
  }
}

TEST(Integration, ForecastRiskChangesRoutingDuringStorm) {
  // During a hurricane advisory, PoPs in the wind field pick up forecast
  // risk and the metric must respond (Section 7.3 mechanics).
  const Study& study = SharedStudy();
  RiskGraph graph = study.BuildGraphFor("Level3");
  const auto advisories = forecast::GenerateAdvisories(forecast::SandyTrack());
  // Advisory near landfall: large wind field over the northeast.
  const forecast::Advisory& landfall = advisories[advisories.size() - 3];
  const forecast::ForecastRiskField field(landfall);
  std::vector<double> risks(graph.node_count());
  std::size_t affected = 0;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    risks[i] = field.RiskAt(graph.node(i).location);
    if (risks[i] > 0) ++affected;
  }
  EXPECT_GT(affected, 10u);  // Sandy's field must cover many Level3 PoPs
  graph.SetForecastRisks(risks);
  util::ThreadPool pool;
  const RatioReport with_storm =
      ComputeIntradomainRatios(graph, RiskParams{1e5, 1e3}, &pool);
  graph.ClearForecastRisks();
  const RatioReport without_storm =
      ComputeIntradomainRatios(graph, RiskParams{1e5, 1e3}, &pool);
  EXPECT_GT(with_storm.risk_reduction_ratio,
            without_storm.risk_reduction_ratio);
}

TEST(Integration, StormScopeCountsAreOrderedLikeThePaper) {
  // Section 7.3: tier-1 PoPs under hurricane-force winds — Katrina far
  // fewer than Irene, Irene fewer than Sandy (8 / 86 / 115 in the paper).
  const Study& study = SharedStudy();
  auto count_for = [&](const forecast::StormTrack& track) {
    const forecast::StormScope scope(forecast::GenerateAdvisories(track));
    std::size_t total = 0;
    for (const std::size_t n :
         study.corpus().NetworksOfKind(topology::NetworkKind::kTier1)) {
      total += scope.CountPopsInZone(study.corpus().network(n),
                                     forecast::WindZone::kHurricane);
    }
    return total;
  };
  // Absolute counts run below the paper's (86/8/115): the synthetic corpus
  // places one PoP per city while the real maps put many metro PoPs inside
  // the storm bands (see EXPERIMENTS.md). The ordering is the invariant.
  const std::size_t katrina = count_for(forecast::KatrinaTrack());
  const std::size_t irene = count_for(forecast::IreneTrack());
  const std::size_t sandy = count_for(forecast::SandyTrack());
  EXPECT_LT(katrina, irene);
  EXPECT_LT(irene, sandy);
  EXPECT_LE(katrina, 20u);
  EXPECT_GE(sandy, 25u);
}

TEST(Integration, MergedGraphConnectsMostOfTheCorpus) {
  const Study& study = SharedStudy();
  const MergedGraph merged = study.BuildMerged();
  EXPECT_EQ(merged.graph.node_count(), 809u);
  EXPECT_GT(merged.peering_edges.size(), 20u);
  // A regional PoP must reach a far-away regional network through the
  // tier-1 mesh: Telepak (Mississippi) to Gridnet (New England).
  const std::size_t telepak = study.NetworkIndex("Telepak");
  const std::size_t gridnet = study.NetworkIndex("Gridnet");
  const core::RouteEngine merged_engine(merged.graph, core::RiskParams{0, 0});
  const auto path = merged_engine.FindPath(merged.GlobalId(telepak, 0),
                                           merged.GlobalId(gridnet, 0), 0.0);
  EXPECT_TRUE(path.has_value());
}

TEST(Integration, InterdomainRatiosNonDegenerate) {
  const Study& study = SharedStudy();
  util::ThreadPool pool;
  const MergedGraph merged = study.BuildMerged();
  const RatioReport report = InterdomainRatios(
      merged, study.corpus(), study.NetworkIndex("Digex"),
      RiskParams{1e5, 1e3}, &pool);
  EXPECT_GT(report.pair_count, 1000u);
  EXPECT_GE(report.risk_reduction_ratio, 0.0);
  EXPECT_LT(report.risk_reduction_ratio, 1.0);
}

}  // namespace
}  // namespace riskroute::core
