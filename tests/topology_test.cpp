// Unit tests for the topology module: network graph invariants, corpus
// bookkeeping, the gazetteer, the synthetic corpus generator (paper-scale
// checks), and serialization round-trips.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "geo/distance.h"
#include "topology/corpus.h"
#include "topology/gazetteer.h"
#include "topology/generator.h"
#include "topology/network.h"
#include "topology/serialize.h"
#include "util/error.h"
#include "util/rng.h"

namespace riskroute::topology {
namespace {

Network MakeTriangle() {
  Network net("tri", NetworkKind::kRegional);
  net.AddPop(Pop{"A, TX", geo::GeoPoint(30, -95)});
  net.AddPop(Pop{"B, TX", geo::GeoPoint(31, -96)});
  net.AddPop(Pop{"C, TX", geo::GeoPoint(32, -97)});
  net.AddLink(0, 1);
  net.AddLink(1, 2);
  net.AddLink(0, 2);
  return net;
}

TEST(Network, RequiresName) {
  EXPECT_THROW(Network("", NetworkKind::kTier1), InvalidArgument);
}

TEST(Network, AddLinkValidation) {
  Network net = MakeTriangle();
  EXPECT_THROW(net.AddLink(0, 0), InvalidArgument);
  EXPECT_THROW(net.AddLink(0, 5), InvalidArgument);
}

TEST(Network, DuplicateLinksIgnored) {
  Network net = MakeTriangle();
  const std::size_t before = net.link_count();
  net.AddLink(0, 1);
  net.AddLink(1, 0);
  EXPECT_EQ(net.link_count(), before);
}

TEST(Network, NeighborsSorted) {
  Network net("n", NetworkKind::kRegional);
  for (int i = 0; i < 5; ++i) {
    net.AddPop(Pop{"P, TX", geo::GeoPoint(30 + i, -95)});
  }
  net.AddLink(2, 4);
  net.AddLink(2, 0);
  net.AddLink(2, 3);
  EXPECT_EQ(net.Neighbors(2), (std::vector<std::size_t>{0, 3, 4}));
}

TEST(Network, HasLinkSymmetric) {
  const Network net = MakeTriangle();
  EXPECT_TRUE(net.HasLink(0, 1));
  EXPECT_TRUE(net.HasLink(1, 0));
  EXPECT_FALSE(net.HasLink(0, 99));
}

TEST(Network, Connectivity) {
  Network net("n", NetworkKind::kRegional);
  net.AddPop(Pop{"A, TX", geo::GeoPoint(30, -95)});
  net.AddPop(Pop{"B, TX", geo::GeoPoint(31, -96)});
  net.AddPop(Pop{"C, TX", geo::GeoPoint(32, -97)});
  EXPECT_FALSE(net.IsConnected());
  net.AddLink(0, 1);
  EXPECT_FALSE(net.IsConnected());
  net.AddLink(1, 2);
  EXPECT_TRUE(net.IsConnected());
}

TEST(Network, FootprintIsMaxPairwiseDistance) {
  const Network net = MakeTriangle();
  const double expected = geo::GreatCircleMiles(geo::GeoPoint(30, -95),
                                                geo::GeoPoint(32, -97));
  EXPECT_NEAR(net.FootprintMiles(), expected, 1e-9);
}

TEST(Network, AverageDegreeAndLinkMiles) {
  const Network net = MakeTriangle();
  EXPECT_DOUBLE_EQ(net.AverageDegree(), 2.0);
  EXPECT_GT(net.TotalLinkMiles(), 0.0);
}

TEST(Network, NearestPopAndFind) {
  const Network net = MakeTriangle();
  EXPECT_EQ(net.NearestPop(geo::GeoPoint(30.1, -95.1)), 0u);
  EXPECT_EQ(net.FindPop("B, TX"), std::optional<std::size_t>(1));
  EXPECT_FALSE(net.FindPop("Z, TX").has_value());
}

TEST(NetworkKind, RoundTrip) {
  EXPECT_EQ(ParseNetworkKind(ToString(NetworkKind::kTier1)),
            NetworkKind::kTier1);
  EXPECT_EQ(ParseNetworkKind(ToString(NetworkKind::kRegional)),
            NetworkKind::kRegional);
  EXPECT_FALSE(ParseNetworkKind("bogus").has_value());
}

TEST(Corpus, RejectsDuplicateNames) {
  Corpus corpus;
  corpus.AddNetwork(Network("x", NetworkKind::kTier1));
  EXPECT_THROW(corpus.AddNetwork(Network("x", NetworkKind::kRegional)),
               InvalidArgument);
}

TEST(Corpus, PeeringBookkeeping) {
  Corpus corpus;
  corpus.AddNetwork(Network("a", NetworkKind::kTier1));
  corpus.AddNetwork(Network("b", NetworkKind::kTier1));
  corpus.AddNetwork(Network("c", NetworkKind::kRegional));
  corpus.AddPeering(0, 1);
  corpus.AddPeering(1, 0);  // duplicate ignored
  EXPECT_EQ(corpus.peerings().size(), 1u);
  EXPECT_TRUE(corpus.ArePeers(0, 1));
  EXPECT_FALSE(corpus.ArePeers(0, 2));
  EXPECT_EQ(corpus.PeersOf(1), (std::vector<std::size_t>{0}));
  EXPECT_THROW(corpus.AddPeering(0, 0), InvalidArgument);
  EXPECT_THROW(corpus.AddPeering(0, 9), InvalidArgument);
}

// ---------- gazetteer ----------

TEST(Gazetteer, HasPaperAnchorCities) {
  EXPECT_NE(FindCity("Houston", "TX"), nullptr);
  EXPECT_NE(FindCity("Boston", "MA"), nullptr);
  EXPECT_NE(FindCity("New Orleans", "LA"), nullptr);
  EXPECT_EQ(FindCity("Atlantis", "FL"), nullptr);
}

TEST(Gazetteer, AllCoordinatesValidAndInConusBox) {
  for (const City& city : Cities()) {
    ASSERT_TRUE(geo::IsValidLatLon(city.latitude, city.longitude)) << city.name;
    EXPECT_GT(city.population, 0) << city.name;
    EXPECT_GE(city.latitude, 24.0) << city.name;
    EXPECT_LE(city.latitude, 49.5) << city.name;
    EXPECT_GE(city.longitude, -125.0) << city.name;
    EXPECT_LE(city.longitude, -66.5) << city.name;
  }
}

TEST(Gazetteer, StateFilterWorks) {
  const auto ms = CitiesInStates({"MS"});
  EXPECT_GE(ms.size(), 10u);
  for (const City* c : ms) EXPECT_EQ(c->state, "MS");
  const auto all = CitiesInStates({});
  EXPECT_EQ(all.size(), Cities().size());
}

TEST(Gazetteer, NoDuplicateNameStatePairs) {
  std::set<std::pair<std::string_view, std::string_view>> seen;
  for (const City& city : Cities()) {
    EXPECT_TRUE(seen.emplace(city.name, city.state).second)
        << city.name << ", " << city.state;
  }
}

// ---------- generator ----------

TEST(Generator, PaperScaleCounts) {
  const Corpus corpus = GeneratePaperCorpus(123);
  EXPECT_EQ(corpus.network_count(), 23u);
  std::size_t tier1_pops = 0, regional_pops = 0;
  for (const Network& net : corpus.networks()) {
    if (net.kind() == NetworkKind::kTier1) {
      tier1_pops += net.pop_count();
    } else {
      regional_pops += net.pop_count();
    }
  }
  // Section 4.1: 7 Tier-1 networks with 354 PoPs, 16 regional with 455.
  EXPECT_EQ(corpus.NetworksOfKind(NetworkKind::kTier1).size(), 7u);
  EXPECT_EQ(corpus.NetworksOfKind(NetworkKind::kRegional).size(), 16u);
  EXPECT_EQ(tier1_pops, 354u);
  EXPECT_EQ(regional_pops, 455u);
}

TEST(Generator, EveryNetworkConnected) {
  const Corpus corpus = GeneratePaperCorpus(123);
  for (const Network& net : corpus.networks()) {
    EXPECT_TRUE(net.IsConnected()) << net.name();
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  const Corpus a = GeneratePaperCorpus(77);
  const Corpus b = GeneratePaperCorpus(77);
  ASSERT_EQ(a.network_count(), b.network_count());
  for (std::size_t n = 0; n < a.network_count(); ++n) {
    ASSERT_EQ(a.network(n).pop_count(), b.network(n).pop_count());
    ASSERT_EQ(a.network(n).link_count(), b.network(n).link_count());
    for (std::size_t p = 0; p < a.network(n).pop_count(); ++p) {
      EXPECT_EQ(a.network(n).pop(p).name, b.network(n).pop(p).name);
      EXPECT_EQ(a.network(n).pop(p).location, b.network(n).pop(p).location);
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Corpus a = GeneratePaperCorpus(1);
  const Corpus b = GeneratePaperCorpus(2);
  bool any_difference = false;
  for (std::size_t n = 0; n < a.network_count() && !any_difference; ++n) {
    for (std::size_t p = 0; p < a.network(n).pop_count(); ++p) {
      if (!(a.network(n).pop(p).location == b.network(n).pop(p).location)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, Level3HasPaperCaseStudyPops) {
  const Corpus corpus = GeneratePaperCorpus(123);
  const Network& level3 = corpus.network(*corpus.FindNetwork("Level3"));
  EXPECT_EQ(level3.pop_count(), 233u);  // Table 2
  EXPECT_TRUE(level3.FindPop("Houston, TX").has_value());  // Figure 7
  EXPECT_TRUE(level3.FindPop("Boston, MA").has_value());
}

TEST(Generator, RegionalNetworksConfinedToTheirStates) {
  const Corpus corpus = GeneratePaperCorpus(123);
  // Telepak is a Mississippi-area network (paper case study: Katrina).
  const Network& telepak = corpus.network(*corpus.FindNetwork("Telepak"));
  for (const Pop& pop : telepak.pops()) {
    // All PoPs within ~350 miles of Jackson, MS (footprint sanity).
    EXPECT_LT(geo::GreatCircleMiles(pop.location, geo::GeoPoint(32.3, -90.2)),
              400.0)
        << pop.name;
  }
}

TEST(Generator, PeeringsMatchFigure2Structure) {
  const Corpus corpus = GeneratePaperCorpus(123);
  // Tier-1 full mesh: 7 choose 2 = 21 peerings among tier-1s.
  const auto tier1 = corpus.NetworksOfKind(NetworkKind::kTier1);
  std::size_t tier1_peerings = 0;
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      if (corpus.ArePeers(tier1[i], tier1[j])) ++tier1_peerings;
    }
  }
  EXPECT_EQ(tier1_peerings, 21u);
  // Every regional peers with at least one tier-1.
  for (const std::size_t r : corpus.NetworksOfKind(NetworkKind::kRegional)) {
    EXPECT_FALSE(corpus.PeersOf(r).empty()) << corpus.network(r).name();
  }
}

TEST(Generator, RequiredCityValidation) {
  NetworkSpec spec;
  spec.name = "bad";
  spec.pop_count = 3;
  spec.required_cities = {{"Nowhere", "ZZ"}};
  util::Rng rng(1);
  EXPECT_THROW((void)GenerateNetwork(spec, rng), InvalidArgument);
}

TEST(Generator, SatelliteSynthesisCoversShortGazetteer) {
  NetworkSpec spec;
  spec.name = "dense-ri";
  spec.pop_count = 12;  // Rhode Island has only 3 gazetteer cities
  spec.states = {"RI"};
  util::Rng rng(2);
  const Network net = GenerateNetwork(spec, rng);
  EXPECT_EQ(net.pop_count(), 12u);
  EXPECT_TRUE(net.IsConnected());
}

// ---------- serialization ----------

TEST(Serialize, RoundTripPreservesEverything) {
  const Corpus original = GeneratePaperCorpus(9);
  const std::string text = CorpusToString(original);
  const Corpus parsed = CorpusFromString(text);
  ASSERT_EQ(parsed.network_count(), original.network_count());
  EXPECT_EQ(parsed.peerings().size(), original.peerings().size());
  for (std::size_t n = 0; n < original.network_count(); ++n) {
    const Network& a = original.network(n);
    const Network& b = parsed.network(n);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.kind(), b.kind());
    ASSERT_EQ(a.pop_count(), b.pop_count());
    EXPECT_EQ(a.link_count(), b.link_count());
    for (std::size_t p = 0; p < a.pop_count(); ++p) {
      EXPECT_EQ(a.pop(p).name, b.pop(p).name);
      EXPECT_NEAR(a.pop(p).location.latitude(), b.pop(p).location.latitude(),
                  1e-5);
      EXPECT_NEAR(a.pop(p).location.longitude(), b.pop(p).location.longitude(),
                  1e-5);
    }
  }
}

TEST(Serialize, ParsesHandWrittenCorpus) {
  const std::string text = R"(# comment line
corpus v1
network Demo tier1
pop 0 29.760000 -95.370000 Houston, TX
pop 1 42.360000 -71.060000 Boston, MA
link 0 1
network Other regional
pop 0 32.300000 -90.180000 Jackson, MS
peering Demo Other
)";
  const Corpus corpus = CorpusFromString(text);
  EXPECT_EQ(corpus.network_count(), 2u);
  EXPECT_EQ(corpus.network(0).pop(0).name, "Houston, TX");
  EXPECT_TRUE(corpus.network(0).HasLink(0, 1));
  EXPECT_TRUE(corpus.ArePeers(0, 1));
}

struct BadCorpusCase {
  const char* label;
  const char* text;
};

class SerializeErrors : public ::testing::TestWithParam<BadCorpusCase> {};

TEST_P(SerializeErrors, RejectsMalformedInput) {
  EXPECT_THROW((void)CorpusFromString(GetParam().text), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SerializeErrors,
    ::testing::Values(
        BadCorpusCase{"missing_header", "network X tier1\n"},
        BadCorpusCase{"bad_kind", "corpus v1\nnetwork X tierX\n"},
        BadCorpusCase{"pop_before_network", "corpus v1\npop 0 1 2 A\n"},
        BadCorpusCase{"pop_out_of_order",
                      "corpus v1\nnetwork X tier1\npop 1 30 -95 A\n"},
        BadCorpusCase{"bad_pop_coords",
                      "corpus v1\nnetwork X tier1\npop 0 abc -95 A\n"},
        BadCorpusCase{"link_out_of_range",
                      "corpus v1\nnetwork X tier1\npop 0 30 -95 A\nlink 0 7\n"},
        BadCorpusCase{"peering_unknown",
                      "corpus v1\nnetwork X tier1\npeering X Y\n"},
        BadCorpusCase{"unknown_keyword", "corpus v1\nwat 1 2\n"}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace riskroute::topology
