// Tests for the storm-motion projection (forecast cone) and the GeoJSON
// exports.
#include <gtest/gtest.h>

#include "forecast/projection.h"
#include "geo/distance.h"
#include "topology/generator.h"
#include "topology/geojson.h"
#include "util/error.h"

namespace riskroute {
namespace {

// ---------- projection ----------

forecast::Advisory MovingStorm() {
  forecast::Advisory advisory;
  advisory.storm_name = "TEST";
  advisory.time = forecast::AdvisoryTime{2012, 10, 28, 12, "EDT"};
  advisory.center = geo::GeoPoint(33.0, -75.0);
  advisory.max_wind_mph = 85;
  advisory.hurricane_wind_radius_miles = 80;
  advisory.tropical_wind_radius_miles = 250;
  advisory.motion_direction = "NORTH";
  advisory.motion_mph = 15;
  return advisory;
}

TEST(Projection, ZeroLeadIsIdentity) {
  const forecast::Advisory advisory = MovingStorm();
  const forecast::Advisory projected = forecast::ProjectAdvisory(advisory, 0);
  EXPECT_EQ(projected.center, advisory.center);
  EXPECT_DOUBLE_EQ(projected.tropical_wind_radius_miles,
                   advisory.tropical_wind_radius_miles);
}

TEST(Projection, DeadReckonsAlongMotion) {
  const forecast::Advisory advisory = MovingStorm();
  const forecast::Advisory projected = forecast::ProjectAdvisory(advisory, 10);
  // 15 mph north for 10 hours = 150 miles north.
  EXPECT_NEAR(geo::GreatCircleMiles(advisory.center, projected.center), 150,
              0.5);
  EXPECT_GT(projected.center.latitude(), advisory.center.latitude());
  EXPECT_NEAR(projected.center.longitude(), advisory.center.longitude(), 0.1);
}

TEST(Projection, UncertaintyGrowsRadii) {
  const forecast::Advisory advisory = MovingStorm();
  forecast::ProjectionOptions options;
  options.uncertainty_miles_per_hour = 10.0;
  const forecast::Advisory projected =
      forecast::ProjectAdvisory(advisory, 12, options);
  EXPECT_DOUBLE_EQ(projected.hurricane_wind_radius_miles, 80 + 120);
  EXPECT_DOUBLE_EQ(projected.tropical_wind_radius_miles, 250 + 120);
  EXPECT_EQ(projected.time, advisory.time.PlusHours(12));
}

TEST(Projection, NoHurricaneFieldStaysZero) {
  forecast::Advisory ts = MovingStorm();
  ts.hurricane_wind_radius_miles = 0;
  const forecast::Advisory projected = forecast::ProjectAdvisory(ts, 24);
  EXPECT_DOUBLE_EQ(projected.hurricane_wind_radius_miles, 0.0);
  EXPECT_GT(projected.tropical_wind_radius_miles,
            ts.tropical_wind_radius_miles);
}

TEST(Projection, MotionDecayShortensDisplacement) {
  const forecast::Advisory advisory = MovingStorm();
  forecast::ProjectionOptions decayed;
  decayed.motion_decay_per_hour = 0.9;
  const auto straight = forecast::ProjectAdvisory(advisory, 24);
  const auto curved = forecast::ProjectAdvisory(advisory, 24, decayed);
  EXPECT_LT(geo::GreatCircleMiles(advisory.center, curved.center),
            geo::GreatCircleMiles(advisory.center, straight.center));
}

TEST(Projection, NegativeLeadThrows) {
  EXPECT_THROW((void)forecast::ProjectAdvisory(MovingStorm(), -1),
               InvalidArgument);
}

TEST(ConeRiskField, CoversPointsAheadOfTheStorm) {
  const forecast::Advisory advisory = MovingStorm();
  // A point ~300 miles north: outside the current field, inside the
  // 24-hour projection (360 mi displacement + grown radius).
  const geo::GeoPoint ahead = geo::Destination(advisory.center, 0, 300);
  const forecast::ForecastRiskField now(advisory);
  EXPECT_DOUBLE_EQ(now.RiskAt(ahead), 0.0);
  const forecast::ConeRiskField cone(advisory, {0, 12, 24});
  EXPECT_GT(cone.RiskAt(ahead), 0.0);
}

TEST(ConeRiskField, NeverBelowInstantaneousField) {
  const forecast::Advisory advisory = MovingStorm();
  const forecast::ForecastRiskField now(advisory);
  const forecast::ConeRiskField cone(advisory, {0, 12, 24});
  for (const double bearing : {0.0, 90.0, 180.0, 270.0}) {
    for (const double miles : {0.0, 100.0, 300.0, 600.0}) {
      const geo::GeoPoint p = geo::Destination(advisory.center, bearing, miles);
      EXPECT_GE(cone.RiskAt(p), now.RiskAt(p));
    }
  }
}

TEST(ConeRiskField, Validation) {
  EXPECT_THROW(forecast::ConeRiskField(MovingStorm(), {}), InvalidArgument);
}

// ---------- geojson ----------

topology::Network TinyNetwork() {
  topology::Network net("Tiny", topology::NetworkKind::kRegional);
  net.AddPop({"Alpha, TX", geo::GeoPoint(30.0, -95.0)});
  net.AddPop({"Beta \"B\", TX", geo::GeoPoint(31.0, -96.0)});
  net.AddLink(0, 1);
  return net;
}

TEST(GeoJson, NetworkDocumentStructure) {
  const std::string doc = topology::NetworkToGeoJson(TinyNetwork());
  EXPECT_NE(doc.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(doc.find("\"Point\""), std::string::npos);
  EXPECT_NE(doc.find("\"LineString\""), std::string::npos);
  // GeoJSON coordinate order is [lon, lat].
  EXPECT_NE(doc.find("[-95.000000,30.000000]"), std::string::npos);
  // Quote in the PoP name must be escaped.
  EXPECT_NE(doc.find("Beta \\\"B\\\""), std::string::npos);
  EXPECT_EQ(doc.find("Beta \"B\""), std::string::npos);
}

TEST(GeoJson, RiskPropertyIncludedWhenProvided) {
  const topology::Network net = TinyNetwork();
  const std::string doc = topology::NetworkToGeoJson(
      net, [](std::size_t i) { return 0.5 + static_cast<double>(i); });
  EXPECT_NE(doc.find("\"risk\":0.5"), std::string::npos);
  EXPECT_NE(doc.find("\"risk\":1.5"), std::string::npos);
  const std::string plain = topology::NetworkToGeoJson(net);
  EXPECT_EQ(plain.find("\"risk\""), std::string::npos);
}

TEST(GeoJson, CorpusIncludesEveryNetwork) {
  const topology::Corpus corpus = topology::GeneratePaperCorpus(3);
  const std::string doc = topology::CorpusToGeoJson(corpus);
  for (const topology::Network& net : corpus.networks()) {
    EXPECT_NE(doc.find("\"" + topology::JsonEscape(net.name()) + "\""),
              std::string::npos)
        << net.name();
  }
}

TEST(GeoJson, PathFeature) {
  const topology::Network net = TinyNetwork();
  const std::string doc = topology::PathToGeoJson(net, {0, 1}, "riskroute");
  EXPECT_NE(doc.find("\"label\":\"riskroute\""), std::string::npos);
  EXPECT_NE(doc.find("\"LineString\""), std::string::npos);
  EXPECT_THROW((void)topology::PathToGeoJson(net, {}, "x"), InvalidArgument);
}

TEST(GeoJson, EscapeHandlesControlCharacters) {
  EXPECT_EQ(topology::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(topology::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(topology::JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(topology::JsonEscape("plain"), "plain");
}

}  // namespace
}  // namespace riskroute
