// Tests for the simulation module (gravity traffic, Monte-Carlo outage
// validation), the shared-risk analysis, and the hazard type-weight
// extension of Section 5.2.
#include <gtest/gtest.h>

#include "hazard/risk_field.h"
#include "hazard/synthesis.h"
#include "provision/shared_risk.h"
#include "sim/outage_sim.h"
#include "sim/traffic.h"
#include "util/error.h"

namespace riskroute::sim {
namespace {

using core::RiskGraph;
using core::RiskNode;

/// West-east graph with a risky southern corridor and safe northern
/// detour; hazard events concentrate on the southern corridor.
RiskGraph CorridorGraph() {
  RiskGraph graph;
  graph.AddNode(RiskNode{"W", geo::GeoPoint(35.0, -100.0), 0.3, 0.00, 0.0});
  graph.AddNode(RiskNode{"N", geo::GeoPoint(39.5, -95.0), 0.1, 0.001, 0.0});
  graph.AddNode(RiskNode{"S", geo::GeoPoint(32.0, -95.0), 0.2, 0.30, 0.0});
  graph.AddNode(RiskNode{"E", geo::GeoPoint(35.0, -90.0), 0.4, 0.00, 0.0});
  graph.AddEdgeByDistance(0, 1);
  graph.AddEdgeByDistance(1, 3);
  graph.AddEdgeByDistance(0, 2);
  graph.AddEdgeByDistance(2, 3);
  return graph;
}

/// Catalog of events clustered on the southern corridor node.
std::vector<hazard::Catalog> SouthernEvents() {
  util::Rng rng(5);
  std::vector<hazard::Catalog> catalogs;
  catalogs.emplace_back(
      hazard::HazardType::kFemaHurricane,
      hazard::SampleMixture({{geo::GeoPoint(32.0, -95.0), 1.0, 60.0}}, 400,
                            rng));
  return catalogs;
}

// ---------- traffic ----------

TEST(Traffic, GravityNormalizesToTotal) {
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph, 10.0);
  double total = 0.0;
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    for (std::size_t j = 0; j < traffic.size(); ++j) {
      total += traffic.demand(i, j);
    }
  }
  EXPECT_NEAR(total, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(traffic.demand(1, 1), 0.0);
}

TEST(Traffic, GravityWeighsPopulationProducts) {
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph);
  // Pair (W=0.3, E=0.4) must out-demand pair (N=0.1, S=0.2).
  EXPECT_GT(traffic.demand(0, 3), traffic.demand(1, 2));
  // Symmetric by construction.
  EXPECT_DOUBLE_EQ(traffic.demand(0, 3), traffic.demand(3, 0));
}

TEST(Traffic, UniformIsUniform) {
  const TrafficMatrix traffic = TrafficMatrix::Uniform(4, 12.0);
  EXPECT_DOUBLE_EQ(traffic.demand(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(traffic.demand(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(traffic.demand(2, 2), 0.0);
}

TEST(Traffic, Validation) {
  const RiskGraph graph = CorridorGraph();
  EXPECT_THROW((void)TrafficMatrix::Gravity(graph, -1.0), InvalidArgument);
  EXPECT_THROW((void)TrafficMatrix::Uniform(0), InvalidArgument);
  const TrafficMatrix traffic = TrafficMatrix::Uniform(4);
  EXPECT_THROW((void)traffic.demand(4, 0), InvalidArgument);
}

// ---------- outage simulation ----------

TEST(OutageSim, RiskRouteDodgesDamageOnTheCorridorGraph) {
  // The headline validation: events strike the risky southern corridor,
  // so RiskRoute (which prefers the northern detour) must lose less
  // transit traffic than shortest-path routing.
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph);
  OutageSimOptions options;
  options.trials = 500;
  options.params = core::RiskParams{1e5, 0};
  options.damage_radius_miles = 80.0;
  const OutageSimReport report =
      RunOutageSimulation(graph, SouthernEvents(), traffic, options);
  EXPECT_EQ(report.trials, 500u);
  EXPECT_GT(report.shortest_path_affected, 0.0);
  EXPECT_LT(report.riskroute_affected, report.shortest_path_affected);
  EXPECT_LT(report.AffectedRatio(), 0.7);
}

TEST(OutageSim, ZeroLambdaMakesRoutingsIdentical) {
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph);
  OutageSimOptions options;
  options.trials = 200;
  options.params = core::RiskParams{0, 0};
  const OutageSimReport report =
      RunOutageSimulation(graph, SouthernEvents(), traffic, options);
  EXPECT_DOUBLE_EQ(report.shortest_path_affected, report.riskroute_affected);
  EXPECT_DOUBLE_EQ(report.AffectedRatio(), 1.0);
}

TEST(OutageSim, Deterministic) {
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph);
  OutageSimOptions options;
  options.trials = 100;
  const OutageSimReport a =
      RunOutageSimulation(graph, SouthernEvents(), traffic, options);
  const OutageSimReport b =
      RunOutageSimulation(graph, SouthernEvents(), traffic, options);
  EXPECT_DOUBLE_EQ(a.shortest_path_affected, b.shortest_path_affected);
  EXPECT_DOUBLE_EQ(a.riskroute_affected, b.riskroute_affected);
  EXPECT_DOUBLE_EQ(a.endpoint_loss, b.endpoint_loss);
}

TEST(OutageSim, EndpointLossIndependentOfRouting) {
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph);
  OutageSimOptions a_options;
  a_options.trials = 300;
  a_options.params = core::RiskParams{1e5, 0};
  OutageSimOptions b_options = a_options;
  b_options.params = core::RiskParams{0, 0};
  const OutageSimReport a =
      RunOutageSimulation(graph, SouthernEvents(), traffic, a_options);
  const OutageSimReport b =
      RunOutageSimulation(graph, SouthernEvents(), traffic, b_options);
  EXPECT_DOUBLE_EQ(a.endpoint_loss, b.endpoint_loss);
  EXPECT_DOUBLE_EQ(a.mean_pops_disabled, b.mean_pops_disabled);
}

TEST(OutageSim, Validation) {
  const RiskGraph graph = CorridorGraph();
  const TrafficMatrix traffic = TrafficMatrix::Gravity(graph);
  EXPECT_THROW((void)RunOutageSimulation(graph, {}, traffic), InvalidArgument);
  OutageSimOptions options;
  options.trials = 0;
  EXPECT_THROW(
      (void)RunOutageSimulation(graph, SouthernEvents(), traffic, options),
      InvalidArgument);
  const TrafficMatrix wrong = TrafficMatrix::Uniform(7);
  EXPECT_THROW((void)RunOutageSimulation(graph, SouthernEvents(), wrong),
               InvalidArgument);
}

TEST(OutageSim, DamageRadiiDefinedForAllTypes) {
  for (const hazard::HazardType type : hazard::AllHazardTypes()) {
    EXPECT_GT(DefaultDamageRadiusMiles(type), 0.0);
  }
  // Hurricanes out-damage localized wind events.
  EXPECT_GT(DefaultDamageRadiusMiles(hazard::HazardType::kFemaHurricane),
            DefaultDamageRadiusMiles(hazard::HazardType::kNoaaWind));
}

// ---------- shared risk ----------

topology::Network CityPairNetwork(const char* name, double lat1, double lon1,
                                  double lat2, double lon2) {
  topology::Network net(name, topology::NetworkKind::kRegional);
  net.AddPop({"A, XX", geo::GeoPoint(lat1, lon1)});
  net.AddPop({"B, XX", geo::GeoPoint(lat2, lon2)});
  net.AddLink(0, 1);
  return net;
}

TEST(SharedRisk, CoLocatedNetworksShareFate) {
  // Both networks sit on the event cluster: high joint probability, high
  // correlation, full overlap.
  const auto a = CityPairNetwork("A", 32.0, -95.0, 32.3, -95.2);
  const auto b = CityPairNetwork("B", 32.1, -95.1, 32.2, -94.9);
  provision::SharedRiskOptions options;
  options.trials = 1000;
  options.damage_radius_miles = 100.0;
  const auto report =
      provision::AnalyzeSharedRisk(a, b, SouthernEvents(), options);
  EXPECT_GT(report.overlap_a_in_b, 0.9);
  EXPECT_GT(report.outage_probability_a, 0.5);
  EXPECT_GT(report.joint_outage_probability,
            0.9 * report.outage_probability_a);
  EXPECT_GT(report.outage_correlation, 0.8);
  EXPECT_GE(report.JointLift(), 1.0);
}

TEST(SharedRisk, DisjointNetworksDoNotShareFate) {
  const auto a = CityPairNetwork("A", 32.0, -95.0, 32.3, -95.2);   // on events
  const auto b = CityPairNetwork("B", 47.0, -120.0, 46.5, -119.0); // far away
  provision::SharedRiskOptions options;
  options.trials = 1000;
  options.damage_radius_miles = 100.0;
  const auto report =
      provision::AnalyzeSharedRisk(a, b, SouthernEvents(), options);
  EXPECT_DOUBLE_EQ(report.overlap_a_in_b, 0.0);
  EXPECT_DOUBLE_EQ(report.outage_probability_b, 0.0);
  EXPECT_DOUBLE_EQ(report.joint_outage_probability, 0.0);
}

TEST(SharedRisk, Validation) {
  const auto a = CityPairNetwork("A", 32.0, -95.0, 32.3, -95.2);
  EXPECT_THROW((void)provision::AnalyzeSharedRisk(a, a, {}, {}),
               InvalidArgument);
  provision::SharedRiskOptions options;
  options.trials = 0;
  EXPECT_THROW(
      (void)provision::AnalyzeSharedRisk(a, a, SouthernEvents(), options),
      InvalidArgument);
}

TEST(SharedRisk, PinnedTrialStreamRegression) {
  // Byte-pinned report: trial t draws from PhiloxRng(seed, t), so the
  // numbers below are a pure function of (networks, catalog, options).
  // The pre-fix code fed one shared mt19937_64 through every trial,
  // which silently re-ordered draws under any loop restructuring; these
  // EXPECT_EQs fail if anyone reintroduces sequential-stream sampling or
  // perturbs the per-trial draw order.
  const auto a = CityPairNetwork("A", 32.0, -95.0, 32.3, -95.2);
  const auto b = CityPairNetwork("B", 32.1, -95.1, 33.5, -93.5);
  provision::SharedRiskOptions options;
  options.trials = 256;
  options.damage_radius_miles = 60.0;
  const auto report =
      provision::AnalyzeSharedRisk(a, b, SouthernEvents(), options);
  EXPECT_EQ(report.trials, 256u);
  EXPECT_EQ(report.outage_probability_a, 0.70703125);
  EXPECT_EQ(report.outage_probability_b, 0.671875);
  EXPECT_EQ(report.joint_outage_probability, 0.6640625);
  EXPECT_EQ(report.outage_correlation, 0.88456023318033661);
}

// ---------- hazard type weights (paper Section 5.2 extension) ----------

TEST(TypeWeights, WeightsScaleAggregateRisk) {
  util::Rng rng(9);
  std::vector<hazard::Catalog> catalogs;
  catalogs.emplace_back(
      hazard::HazardType::kFemaHurricane,
      hazard::SampleMixture({{geo::GeoPoint(30.0, -90.0), 1.0, 80.0}}, 200,
                            rng));
  catalogs.emplace_back(
      hazard::HazardType::kFemaTornado,
      hazard::SampleMixture({{geo::GeoPoint(36.0, -97.0), 1.0, 80.0}}, 200,
                            rng));
  hazard::HistoricalRiskField field(catalogs, {60.0, 60.0});
  const geo::GeoPoint gulf(30.0, -90.0);
  const double hurricane_part =
      field.RiskAt(gulf, hazard::HazardType::kFemaHurricane);
  const double tornado_part =
      field.RiskAt(gulf, hazard::HazardType::kFemaTornado);

  field.SetTypeWeights({3.0, 0.0});
  EXPECT_NEAR(field.RiskAt(gulf), 3.0 * hurricane_part, 1e-15);
  EXPECT_DOUBLE_EQ(field.RiskAt(gulf, hazard::HazardType::kFemaTornado), 0.0);

  field.SetTypeWeights({1.0, 1.0});
  EXPECT_NEAR(field.RiskAt(gulf), hurricane_part + tornado_part, 1e-15);
}

TEST(TypeWeights, Validation) {
  util::Rng rng(10);
  std::vector<hazard::Catalog> catalogs;
  catalogs.emplace_back(
      hazard::HazardType::kFemaStorm,
      hazard::SampleMixture({{geo::GeoPoint(38.0, -95.0), 1.0, 100.0}}, 100,
                            rng));
  hazard::HistoricalRiskField field(catalogs, {60.0});
  EXPECT_THROW(field.SetTypeWeights({1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(field.SetTypeWeights({-1.0}), InvalidArgument);
  EXPECT_NO_THROW(field.SetTypeWeights({2.5}));
  EXPECT_EQ(field.type_weights().size(), 1u);
}

}  // namespace
}  // namespace riskroute::sim
