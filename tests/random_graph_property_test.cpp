// Property tests on random graphs: Dijkstra is cross-checked against
// Floyd-Warshall, Yen's enumeration against exhaustive DFS path
// enumeration, and metric invariants against random parameter draws.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/edge_overlay.h"
#include "core/k_shortest.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute::core {
namespace {

/// Random connected geometric graph with random risk attributes.
RiskGraph RandomGraph(std::size_t n, double extra_edge_prob, util::Rng& rng) {
  RiskGraph graph;
  std::vector<double> fractions(n);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fractions[i] = rng.Uniform(0.01, 1.0);
    fraction_sum += fractions[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "n" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        fractions[i] / fraction_sum, rng.Uniform(0.0, 0.5),
        rng.Chance(0.3) ? rng.Uniform(0.0, 100.0) : 0.0});
  }
  // Random spanning tree first (guarantees connectivity).
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j) && rng.Chance(extra_edge_prob)) {
        graph.AddEdgeByDistance(i, j);
      }
    }
  }
  return graph;
}

/// Floyd-Warshall distances under plain mileage.
std::vector<std::vector<double>> FloydWarshall(const RiskGraph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::vector<double>> dist(
      n, std::vector<double>(n, DijkstraWorkspace::Infinity()));
  for (std::size_t i = 0; i < n; ++i) {
    dist[i][i] = 0.0;
    for (const RiskEdge& e : graph.OutEdges(i)) {
      dist[i][e.to] = std::min(dist[i][e.to], e.miles);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  return dist;
}

/// All loopless paths between two nodes by DFS (small graphs only).
void EnumeratePaths(const RiskGraph& graph, std::size_t node, std::size_t dst,
                    Path& current, std::vector<bool>& visited,
                    std::vector<Path>& out) {
  if (node == dst) {
    out.push_back(current);
    return;
  }
  for (const RiskEdge& e : graph.OutEdges(node)) {
    if (visited[e.to]) continue;
    visited[e.to] = true;
    current.push_back(e.to);
    EnumeratePaths(graph, e.to, dst, current, visited, out);
    current.pop_back();
    visited[e.to] = false;
  }
}

double PathMilesOf(const RiskGraph& graph, const Path& path) {
  double total = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    for (const RiskEdge& e : graph.OutEdges(path[k - 1])) {
      if (e.to == path[k]) total += e.miles;
    }
  }
  return total;
}

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSweep, DijkstraMatchesFloydWarshall) {
  util::Rng rng(GetParam());
  const RiskGraph graph = RandomGraph(20, 0.15, rng);
  const auto expected = FloydWarshall(graph);
  DijkstraWorkspace workspace;
  for (std::size_t s = 0; s < graph.node_count(); ++s) {
    workspace.Run(graph, s, DistanceWeight);
    for (std::size_t d = 0; d < graph.node_count(); ++d) {
      ASSERT_TRUE(workspace.Reached(d));
      EXPECT_NEAR(workspace.DistanceTo(d), expected[s][d], 1e-6)
          << "pair " << s << "->" << d;
    }
  }
}

TEST_P(RandomGraphSweep, YenMatchesExhaustiveEnumeration) {
  util::Rng rng(GetParam() + 1000);
  const RiskGraph graph = RandomGraph(9, 0.25, rng);
  const std::size_t src = 0, dst = graph.node_count() - 1;
  std::vector<Path> all;
  Path current{src};
  std::vector<bool> visited(graph.node_count(), false);
  visited[src] = true;
  EnumeratePaths(graph, src, dst, current, visited, all);
  std::sort(all.begin(), all.end(), [&](const Path& a, const Path& b) {
    return PathMilesOf(graph, a) < PathMilesOf(graph, b);
  });

  const std::size_t k = std::min<std::size_t>(6, all.size());
  const auto yen =
      KShortestPaths(graph, src, dst, k, EdgeWeightFn(DistanceWeight));
  ASSERT_EQ(yen.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    // Weights must match the i-th cheapest enumerated path (paths may tie).
    EXPECT_NEAR(yen[i].weight, PathMilesOf(graph, all[i]), 1e-6)
        << "rank " << i;
  }
}

TEST_P(RandomGraphSweep, MinRiskRouteIsOptimalOverEnumeration) {
  util::Rng rng(GetParam() + 2000);
  const RiskGraph graph = RandomGraph(8, 0.3, rng);
  const RiskParams params{rng.Uniform(10, 1e4), rng.Uniform(0, 10)};
  const RiskRouter router(graph, params);
  const std::size_t src = 0, dst = graph.node_count() - 1;
  std::vector<Path> all;
  Path current{src};
  std::vector<bool> visited(graph.node_count(), false);
  visited[src] = true;
  EnumeratePaths(graph, src, dst, current, visited, all);
  ASSERT_FALSE(all.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const Path& p : all) {
    best = std::min(best, router.PathBitRiskMiles(p));
  }
  const auto route = router.MinRiskRoute(src, dst);
  ASSERT_TRUE(route.has_value());
  EXPECT_NEAR(route->bit_risk_miles, best, 1e-6);
}

TEST_P(RandomGraphSweep, RatiosWellFormed) {
  util::Rng rng(GetParam() + 3000);
  const RiskGraph graph = RandomGraph(15, 0.2, rng);
  const RatioReport report =
      ComputeIntradomainRatios(graph, RiskParams{1e4, 1e2});
  EXPECT_EQ(report.pair_count, 15u * 14u);
  EXPECT_GE(report.risk_reduction_ratio, -1e-9);
  EXPECT_LT(report.risk_reduction_ratio, 1.0);
  EXPECT_GE(report.distance_increase_ratio, -1e-9);
}

/// Legacy all-pairs matrices via the per-pair DijkstraWorkspace loop: one
/// full distance sweep per source, one targeted bit-risk run per pair.
struct LegacyMatrices {
  std::vector<double> distance;  // row-major n x n
  std::vector<double> bit_risk;
};

LegacyMatrices LegacyAllPairs(const RiskGraph& graph, const RiskParams& params) {
  const std::size_t n = graph.node_count();
  const RiskRouter router(graph, params);
  const auto weight = [&](double alpha) {
    return [&, alpha](std::size_t, const RiskEdge& edge) {
      return edge.miles + alpha * router.NodeScore(edge.to);
    };
  };
  LegacyMatrices m;
  m.distance.assign(n * n, 0.0);
  m.bit_risk.assign(n * n, 0.0);
  DijkstraWorkspace workspace;
  for (std::size_t s = 0; s < n; ++s) {
    workspace.Run(graph, s, DistanceWeight);
    for (std::size_t d = 0; d < n; ++d) {
      m.distance[s * n + d] = workspace.DistanceTo(d);
    }
    for (std::size_t d = 0; d < n; ++d) {
      if (d == s) continue;
      workspace.Run(graph, s, weight(router.Alpha(s, d)), d);
      m.bit_risk[s * n + d] = workspace.DistanceTo(d);
    }
  }
  return m;
}

void ExpectAllPairsBitwiseEqual(const RouteEngine& engine,
                                const EdgeOverlay* overlay,
                                const LegacyMatrices& expected,
                                util::ThreadPool* pool, std::size_t threads) {
  const std::size_t n = engine.node_count();
  const PairMatrix distance =
      engine.AllPairs(RouteMetric::kDistance, pool, overlay);
  const PairMatrix bit_risk =
      engine.AllPairs(RouteMetric::kBitRisk, pool, overlay);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      ASSERT_EQ(distance.at(s, d), expected.distance[s * n + d])
          << "distance " << s << "->" << d << " threads " << threads;
      const double want = (d == s) ? 0.0 : expected.bit_risk[s * n + d];
      ASSERT_EQ(bit_risk.at(s, d), want)
          << "bit-risk " << s << "->" << d << " threads " << threads;
    }
  }
}

TEST_P(RandomGraphSweep, EngineAllPairsBitwiseMatchesLegacyAcrossThreads) {
  util::Rng rng(GetParam() + 4000);
  const RiskGraph graph = RandomGraph(16, 0.15, rng);
  const RiskParams params{rng.Uniform(10, 1e4), rng.Uniform(0, 10)};
  const RouteEngine engine(graph, params);
  const LegacyMatrices expected = LegacyAllPairs(graph, params);

  ExpectAllPairsBitwiseEqual(engine, nullptr, expected, nullptr, 0);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    ExpectAllPairsBitwiseEqual(engine, nullptr, expected, &pool, threads);
  }
}

TEST_P(RandomGraphSweep, EngineOverlayBitwiseMatchesMutateAndRestore) {
  util::Rng rng(GetParam() + 5000);
  RiskGraph graph = RandomGraph(16, 0.2, rng);
  const RiskParams params{rng.Uniform(10, 1e4), rng.Uniform(0, 10)};
  // The engine freezes the pristine graph; all edits ride the overlay.
  const RouteEngine engine(graph, params);

  EdgeOverlay overlay;
  // Remove a couple of existing edges...
  std::size_t removed = 0;
  for (std::size_t a = 0; a < graph.node_count() && removed < 2; a += 3) {
    const auto& edges = graph.OutEdges(a);
    if (edges.empty()) continue;
    const std::size_t b = edges.back().to;
    if (overlay.IsRemoved(a, b)) continue;
    overlay.RemoveEdge(a, b);
    graph.RemoveEdge(a, b);
    ++removed;
  }
  // ...and add a couple of absent ones (absent pairs are disjoint from the
  // removed pairs, which existed).
  std::size_t added = 0;
  for (std::size_t a = 0; a < graph.node_count() && added < 2; ++a) {
    for (std::size_t b = a + 2; b < graph.node_count() && added < 2; b += 5) {
      if (graph.HasEdge(a, b) || overlay.IsRemoved(a, b)) continue;
      const double miles = rng.Uniform(50, 900);
      overlay.AddEdge(a, b, miles);
      graph.AddEdge(a, b, miles);
      ++added;
    }
  }
  ASSERT_GT(removed + added, 0u);

  // `graph` is now the mutate-and-restore target state; the legacy sweep
  // over it is the oracle for engine + overlay.
  const LegacyMatrices expected = LegacyAllPairs(graph, params);
  ExpectAllPairsBitwiseEqual(engine, &overlay, expected, nullptr, 0);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    ExpectAllPairsBitwiseEqual(engine, &overlay, expected, &pool, threads);
  }

  // A freshly frozen engine over the mutated graph agrees with the
  // overlay too (mutation and overlay are interchangeable).
  const RouteEngine refrozen(graph, params);
  ExpectAllPairsBitwiseEqual(refrozen, nullptr, expected, nullptr, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace riskroute::core
