// Correctness wall for the surrogate-triaged ensemble layer:
//
//  - the triaged report is bitwise identical across 1/2/8 worker threads
//    and across universe-id permutations at N = 100k (the determinism
//    contract the API layer relies on for response-byte equality);
//  - Horvitz-Thompson reweighting is unbiased: triaged estimates over
//    many seeds straddle and converge to the plain exact-MC mean over
//    the same universe (predictions steer work, never the estimator);
//  - the audit lane reports finite, internally consistent calibration;
//  - TriageOptions domain validation is a structured reject, not UB;
//  - boundary draws — event picks landing exactly on a slice prefix-sum
//    edge — bucket into the correct catalog (the exact-integer slice
//    sampler regression; the old double-CDF bucketing loses exactly
//    these draws first as archives grow).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "hazard/synthesis.h"
#include "sim/ensemble.h"
#include "sim/triage.h"
#include "util/error.h"
#include "util/philox.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::RiskGraph;
using core::RiskNode;
using core::RouteEngine;
using sim::EnsembleEngine;
using sim::EnsembleOptions;
using sim::TriagedEnsemble;
using sim::TriagedReport;
using sim::TriageOptions;

// Random connected geometric graph over the continental US, as in
// ensemble_property_test.cpp (the synthesized catalogs intersect it).
RiskGraph RandomGraph(std::size_t n, double extra_edge_prob, util::Rng& rng) {
  RiskGraph graph;
  std::vector<double> fractions(n);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fractions[i] = rng.Uniform(0.01, 1.0);
    fraction_sum += fractions[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "n" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        fractions[i] / fraction_sum, rng.Uniform(0.0, 0.5),
        rng.Chance(0.3) ? rng.Uniform(0.0, 100.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j) && rng.Chance(extra_edge_prob)) {
        graph.AddEdgeByDistance(i, j);
      }
    }
  }
  return graph;
}

struct TriageFixture {
  RiskGraph graph;
  RouteEngine engine;
  std::vector<hazard::Catalog> catalogs;

  explicit TriageFixture(std::uint64_t graph_seed = 2024)
      : graph([&] {
          util::Rng rng(graph_seed);
          return RandomGraph(16, 0.15, rng);
        }()),
        engine(graph, core::RiskParams{1e5, 1e3}),
        catalogs(hazard::SynthesizeAllCatalogs()) {}
};

EnsembleOptions EngineOptions(std::size_t scenarios,
                              std::uint64_t seed = 2026) {
  EnsembleOptions options;
  options.scenarios = scenarios;
  options.seed = seed;
  options.damage_radius_scale = 3.0;
  return options;
}

TriageOptions FastTriage() {
  TriageOptions options;
  options.pilot = 48;
  options.audit_stride = 128;
  options.base_rate = 0.05;
  options.min_rate = 0.01;
  return options;
}

// ---------------------------------------------------------------------------
// Determinism: thread counts and universe permutations.

TEST(TriagedEnsemble, BitwiseIdenticalAcrossThreadCountsAt100k) {
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(100000));
  const TriagedEnsemble triaged(ensemble, FastTriage());

  const TriagedReport serial = triaged.Run(nullptr);
  EXPECT_EQ(serial.universe, 100000u);
  const std::string serial_json = serial.ToJson();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(serial_json, triaged.Run(&pool).ToJson())
        << "triaged report diverged at " << threads << " threads";
  }
}

TEST(TriagedEnsemble, UniversePermutationDoesNotChangeTheReport) {
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(4096));
  const TriagedEnsemble triaged(ensemble, FastTriage());
  util::ThreadPool pool(4);

  std::vector<std::uint64_t> ids(4096);
  std::iota(ids.begin(), ids.end(), 0);
  const std::string sorted_json = triaged.Run(ids, &pool).ToJson();
  EXPECT_EQ(sorted_json, triaged.Run(nullptr).ToJson());

  util::Rng rng(11);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[static_cast<std::size_t>(rng.UniformInt(
                    0, static_cast<std::int64_t>(i) - 1))]);
    }
    EXPECT_EQ(sorted_json, triaged.Run(ids, &pool).ToJson())
        << "permutation round " << round;
  }
}

TEST(TriagedEnsemble, DuplicateAndEmptyUniversesAreRejected) {
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(64));
  const TriagedEnsemble triaged(ensemble, FastTriage());
  const std::vector<std::uint64_t> dup = {3, 7, 3};
  EXPECT_THROW((void)triaged.Run(dup, nullptr), InvalidArgument);
  const std::vector<std::uint64_t> none;
  EXPECT_THROW((void)triaged.Run(none, nullptr), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Estimator correctness.

TEST(TriagedEnsemble, LaneAccountingIsExhaustive) {
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(8192));
  const TriagedReport report = TriagedEnsemble(ensemble, FastTriage()).Run();

  EXPECT_EQ(report.universe, 8192u);
  EXPECT_EQ(report.empty_scenarios + report.pilot_exact + report.audit_exact +
                report.flagged_exact + report.sampled_exact + report.skipped,
            report.universe);
  EXPECT_EQ(report.exact_evaluations, report.pilot_exact + report.audit_exact +
                                          report.flagged_exact +
                                          report.sampled_exact);
  EXPECT_DOUBLE_EQ(report.exact_fraction,
                   static_cast<double>(report.exact_evaluations) /
                       static_cast<double>(report.universe));
  // The estimate spans the whole universe, not just evaluated scenarios.
  EXPECT_EQ(report.estimate.scenarios, report.universe);
  EXPECT_GT(report.weight_sum, 0.0);
  // Every non-sampled lane carries weight 1, so the realized weight sum
  // is at least the count of weight-1 scenarios.
  EXPECT_GE(report.weight_sum,
            static_cast<double>(report.universe - report.skipped -
                                report.sampled_exact));
}

TEST(TriagedEnsemble, HorvitzThompsonEstimateIsUnbiased) {
  // Fixed universe, varying engine seed: each seed draws a different
  // 20k-scenario universe, and for each the triaged delta-sum estimate
  // is compared against the plain exact run over the same universe. The
  // per-seed relative errors must straddle zero (no systematic tilt) and
  // their mean must shrink well below the typical single-seed deviation.
  const TriageFixture fx;
  double error_sum = 0.0;
  double abs_error_sum = 0.0;
  int positive = 0;
  int negative = 0;
  const int kSeeds = 8;
  for (int s = 0; s < kSeeds; ++s) {
    const EnsembleEngine ensemble(fx.engine, fx.catalogs,
                                  EngineOptions(20000, 3000 + s));
    const sim::EnsembleReport exact = ensemble.Run();
    TriageOptions triage = FastTriage();
    triage.base_rate = 0.20;  // denser sampling lanes: variance, not bias
    triage.min_rate = 0.05;
    const TriagedReport triaged = TriagedEnsemble(ensemble, triage).Run();
    ASSERT_GT(exact.delta_mean, 0.0);
    const double rel =
        (triaged.estimate.delta_mean - exact.delta_mean) / exact.delta_mean;
    error_sum += rel;
    abs_error_sum += std::abs(rel);
    (rel >= 0.0 ? positive : negative) += 1;
  }
  const double mean_error = error_sum / kSeeds;
  const double mean_abs_error = abs_error_sum / kSeeds;
  // Single-seed estimates wobble (HT variance), but the signed mean must
  // be small both absolutely and relative to the typical wobble.
  EXPECT_LT(mean_abs_error, 0.25);
  EXPECT_LT(std::abs(mean_error), 0.10);
  EXPECT_LT(std::abs(mean_error), mean_abs_error + 1e-12);
  EXPECT_GT(positive, 0);
  EXPECT_GT(negative, 0);
}

TEST(TriagedEnsemble, PredictionsNeverEnterTheEstimate) {
  // With every lane forced exact (base_rate = 1 keeps every stratum at
  // pi = 1), the triaged estimate must equal the plain run bit for bit:
  // same draws, same reducer, unit weights everywhere.
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(4096));
  TriageOptions everything = FastTriage();
  everything.base_rate = 1.0;
  everything.min_rate = 1.0;
  const TriagedReport triaged = TriagedEnsemble(ensemble, everything).Run();
  EXPECT_EQ(triaged.skipped, 0u);
  const sim::EnsembleReport exact = ensemble.Run();
  EXPECT_EQ(exact.ToJson(), triaged.estimate.ToJson());
}

TEST(TriagedEnsemble, CalibrationIsReportedAndConsistent) {
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(16384));
  TriageOptions triage = FastTriage();
  triage.audit_stride = 32;  // dense audit lane
  const TriagedReport report = TriagedEnsemble(ensemble, triage).Run();

  ASSERT_GT(report.audit_exact, 0u);
  const sim::TriageCalibration& cal = report.calibration;
  EXPECT_EQ(cal.audits, report.audit_exact);
  EXPECT_TRUE(std::isfinite(cal.mean_abs_error));
  EXPECT_TRUE(std::isfinite(cal.rmse));
  EXPECT_TRUE(std::isfinite(cal.bias));
  EXPECT_GE(cal.mean_abs_error, 0.0);
  EXPECT_GE(cal.rmse, cal.mean_abs_error - 1e-9);      // RMS >= mean |e|
  EXPECT_GE(cal.max_abs_error, cal.mean_abs_error);    // max >= mean
  EXPECT_LE(std::abs(cal.bias), cal.mean_abs_error + 1e-9);
  EXPECT_GE(cal.pilot_residual_sd, 0.0);
  EXPECT_LE(cal.pilot_r2, 1.0);
  // The calibration block is part of the deterministic JSON contract.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"calibration\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_abs_error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Options validation.

TEST(TriagedEnsemble, ValidatesOptions) {
  const TriageFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, EngineOptions(64));
  const double nan = std::numeric_limits<double>::quiet_NaN();

  const auto rejects = [&](auto&& mutate) {
    TriageOptions bad = FastTriage();
    mutate(bad);
    EXPECT_THROW((void)TriagedEnsemble(ensemble, bad), InvalidArgument);
  };
  rejects([](TriageOptions& o) { o.pilot = 0; });
  rejects([](TriageOptions& o) { o.audit_stride = 0; });
  rejects([](TriageOptions& o) { o.base_rate = 0.0; });
  rejects([](TriageOptions& o) { o.base_rate = -0.25; });
  rejects([](TriageOptions& o) { o.base_rate = 1.5; });
  rejects([&](TriageOptions& o) { o.base_rate = nan; });
  rejects([](TriageOptions& o) { o.min_rate = 0.0; });
  rejects([](TriageOptions& o) { o.min_rate = 0.5; });  // > base_rate
  rejects([&](TriageOptions& o) { o.min_rate = nan; });
  rejects([](TriageOptions& o) { o.impact_quantile = 0.0; });
  rejects([](TriageOptions& o) { o.impact_quantile = 1.0; });
  rejects([&](TriageOptions& o) { o.impact_quantile = nan; });
  rejects([](TriageOptions& o) { o.uncertainty_margin = -1.0; });
  rejects([&](TriageOptions& o) {
    o.uncertainty_margin = std::numeric_limits<double>::infinity();
  });
  rejects([](TriageOptions& o) { o.ridge_lambda = -1e-6; });
  rejects([&](TriageOptions& o) { o.ridge_lambda = nan; });
  // The defaults and the fast profile are valid.
  EXPECT_NO_THROW((void)TriagedEnsemble(ensemble, TriageOptions{}));
  EXPECT_NO_THROW((void)TriagedEnsemble(ensemble, FastTriage()));
}

// ---------------------------------------------------------------------------
// Slice-sampler boundary regression (the double-CDF bugfix).

TEST(EnsembleEngine, BoundaryDrawsBucketIntoTheCorrectSlice) {
  // Draw k picks one uniform event index in [0, total) and buckets it by
  // exact integer prefix sums. For every interior slice boundary B
  // (cumulative count), pick B-1 must land in the earlier slice and pick
  // B in the later one. The test replays the engine's own RNG stream
  // (NextIndex consumes exactly one u64) to find draw indices whose pick
  // lands next to each boundary, then checks the drawn hazard type
  // against an independently computed expectation. The pre-fix
  // double-CDF bucketing agrees at these archive sizes but drifts at
  // continental ones — this pins the exact-integer contract either way.
  const TriageFixture fx;
  const EnsembleOptions options = EngineOptions(1 << 14);
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, options);

  const auto layout = ensemble.SliceLayout();
  ASSERT_GT(layout.size(), 1u);
  std::vector<std::uint64_t> prefix;  // inclusive cumulative counts
  std::uint64_t total = 0;
  for (const auto& [catalog, count] : layout) {
    ASSERT_GT(count, 0u);
    total += count;
    prefix.push_back(total);
  }

  const auto slice_for_pick = [&](std::uint64_t pick) {
    return static_cast<std::size_t>(
        std::upper_bound(prefix.begin(), prefix.end(), pick) - prefix.begin());
  };

  // Scan draw indices for picks adjacent to any interior boundary, plus
  // the extremes 0 and total - 1.
  std::size_t checked = 0;
  for (std::uint64_t k = 0; k < 200000 && checked < 12; ++k) {
    util::PhiloxRng rng(options.seed, k);
    const std::uint64_t pick = rng.NextIndex(total);
    const bool interesting =
        pick == 0 || pick == total - 1 ||
        std::binary_search(prefix.begin(), prefix.end(), pick) ||
        std::binary_search(prefix.begin(), prefix.end(), pick + 1);
    if (!interesting) continue;
    ++checked;
    const std::size_t expected_slice = slice_for_pick(pick);
    ASSERT_LT(expected_slice, layout.size());
    const hazard::HazardType expected_type =
        fx.catalogs[layout[expected_slice].first].type();
    EXPECT_EQ(ensemble.Draw(k).type, expected_type)
        << "draw " << k << " pick " << pick << " bucketed off-slice";
  }
  ASSERT_GE(checked, 4u) << "archive produced too few boundary draws to test";
}

}  // namespace
}  // namespace riskroute
