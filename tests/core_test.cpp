// Unit and property tests for the core RiskRoute engine: the risk graph,
// Dijkstra, the Equation 1 metric, Equation 3 optimization and the
// Equation 5/6 ratio computations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "geo/distance.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace riskroute::core {
namespace {

/// Builds the canonical test graph: a safe northern detour and a risky
/// direct southern corridor between A (west) and D (east).
///
///        B(safe)
///       /       \
///  A --+---------+-- D
///       \       /
///        C(risky)
RiskGraph DetourGraph() {
  RiskGraph graph;
  graph.AddNode(RiskNode{"A", geo::GeoPoint(35.0, -100.0), 0.3, 0.0, 0.0});
  graph.AddNode(RiskNode{"B", geo::GeoPoint(39.0, -95.0), 0.2, 0.001, 0.0});
  graph.AddNode(RiskNode{"C", geo::GeoPoint(32.0, -95.0), 0.2, 0.10, 0.0});
  graph.AddNode(RiskNode{"D", geo::GeoPoint(35.0, -90.0), 0.3, 0.0, 0.0});
  graph.AddEdgeByDistance(0, 1);
  graph.AddEdgeByDistance(1, 3);
  graph.AddEdgeByDistance(0, 2);
  graph.AddEdgeByDistance(2, 3);
  return graph;
}

TEST(RiskGraph, EdgeBookkeeping) {
  RiskGraph graph = DetourGraph();
  EXPECT_EQ(graph.node_count(), 4u);
  EXPECT_EQ(graph.directed_edge_count(), 8u);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 0));
  EXPECT_FALSE(graph.HasEdge(0, 3));
  graph.AddEdge(0, 3, 500.0);
  EXPECT_TRUE(graph.HasEdge(0, 3));
  graph.RemoveEdge(0, 3);
  EXPECT_FALSE(graph.HasEdge(0, 3));
  EXPECT_THROW(graph.RemoveEdge(0, 3), InvalidArgument);
}

TEST(RiskGraph, Validation) {
  RiskGraph graph = DetourGraph();
  EXPECT_THROW(graph.AddEdge(0, 0, 10), InvalidArgument);
  EXPECT_THROW(graph.AddEdge(0, 9, 10), InvalidArgument);
  EXPECT_THROW(graph.AddEdge(0, 3, -1), InvalidArgument);
  EXPECT_THROW((void)graph.node(9), InvalidArgument);
  EXPECT_THROW((void)graph.OutEdges(9), InvalidArgument);
  EXPECT_THROW(graph.SetForecastRisks({1.0}), InvalidArgument);
}

TEST(RiskGraph, DuplicateEdgesIgnored) {
  RiskGraph graph = DetourGraph();
  const std::size_t before = graph.directed_edge_count();
  graph.AddEdge(0, 1, 999.0);
  EXPECT_EQ(graph.directed_edge_count(), before);
}

TEST(RiskGraph, ForecastRiskLifecycle) {
  RiskGraph graph = DetourGraph();
  graph.SetForecastRisks({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(graph.node(2).forecast_risk, 3.0);
  graph.ClearForecastRisks();
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(graph.node(i).forecast_risk, 0.0);
  }
}

TEST(RiskGraph, AddEdgesUncheckedMatchesAddEdgeSequence) {
  // The bulk path must reproduce exactly what a sequence of AddEdge calls
  // builds — same adjacency order (first occurrence wins), duplicates in
  // either orientation dropped — because edge order feeds Dijkstra
  // tie-breaking downstream.
  const std::vector<WeightedLink> links = {
      {0, 1, 100.0}, {2, 3, 200.0}, {1, 0, 999.0},  // reversed duplicate
      {1, 3, 300.0}, {2, 3, 888.0},                 // same-orientation dup
      {0, 2, 400.0},
  };
  RiskGraph bulk = DetourGraph();
  RiskGraph incremental = DetourGraph();
  // Strip DetourGraph's edges by rebuilding node-only copies.
  RiskGraph bulk_nodes, incr_nodes;
  for (std::size_t i = 0; i < bulk.node_count(); ++i) {
    bulk_nodes.AddNode(bulk.node(i));
    incr_nodes.AddNode(incremental.node(i));
  }
  bulk_nodes.AddEdgesUnchecked(links);
  for (const WeightedLink& link : links) {
    incr_nodes.AddEdge(link.a, link.b, link.miles);
  }
  ASSERT_EQ(bulk_nodes.directed_edge_count(), 8u);
  ASSERT_EQ(bulk_nodes.directed_edge_count(),
            incr_nodes.directed_edge_count());
  for (std::size_t v = 0; v < bulk_nodes.node_count(); ++v) {
    const auto& a = bulk_nodes.OutEdges(v);
    const auto& b = incr_nodes.OutEdges(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].to, b[k].to) << "node " << v << " slot " << k;
      EXPECT_DOUBLE_EQ(a[k].miles, b[k].miles);
    }
  }
}

TEST(RiskGraph, AddEdgesUncheckedValidation) {
  RiskGraph graph = DetourGraph();
  const std::vector<WeightedLink> out_of_range = {{0, 9, 10.0}};
  EXPECT_THROW(graph.AddEdgesUnchecked(out_of_range), InvalidArgument);
  const std::vector<WeightedLink> self_edge = {{2, 2, 10.0}};
  EXPECT_THROW(graph.AddEdgesUnchecked(self_edge), InvalidArgument);
  const std::vector<WeightedLink> negative = {{0, 3, -1.0}};
  EXPECT_THROW(graph.AddEdgesUnchecked(negative), InvalidArgument);
  // A throwing batch must not have inserted anything.
  EXPECT_FALSE(graph.HasEdge(0, 3));
}

// ---------- Dijkstra ----------

TEST(Dijkstra, FindsShortestDistancePath) {
  const RiskGraph graph = DetourGraph();
  const RouteEngine engine(graph, RiskParams{});
  const auto path = engine.FindPath(0, 3, /*alpha=*/0.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 3u);
  EXPECT_EQ(path->size(), 3u);  // one intermediate node
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  RiskGraph graph;
  graph.AddNode(RiskNode{"A", geo::GeoPoint(30, -90), 0.5, 0, 0});
  graph.AddNode(RiskNode{"B", geo::GeoPoint(40, -100), 0.5, 0, 0});
  const RouteEngine engine(graph, RiskParams{});
  EXPECT_FALSE(engine.FindPath(0, 1, /*alpha=*/0.0).has_value());
}

TEST(Dijkstra, SourceEqualsTarget) {
  const RiskGraph graph = DetourGraph();
  DijkstraWorkspace ws;
  ws.Run(graph, 2, DistanceWeight, 2);
  EXPECT_TRUE(ws.Reached(2));
  EXPECT_DOUBLE_EQ(ws.DistanceTo(2), 0.0);
  EXPECT_EQ(ws.PathTo(2), Path{2});
}

TEST(Dijkstra, DistancesAreMonotoneAlongParents) {
  const RiskGraph graph = DetourGraph();
  DijkstraWorkspace ws;
  ws.Run(graph, 0, DistanceWeight);
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    ASSERT_TRUE(ws.Reached(v));
    const Path path = ws.PathTo(v);
    double along = 0.0;
    for (std::size_t k = 1; k < path.size(); ++k) {
      for (const RiskEdge& e : graph.OutEdges(path[k - 1])) {
        if (e.to == path[k]) along += e.miles;
      }
    }
    EXPECT_NEAR(along, ws.DistanceTo(v), 1e-9);
  }
}

TEST(Dijkstra, Validation) {
  const RiskGraph graph = DetourGraph();
  DijkstraWorkspace ws;
  EXPECT_THROW(ws.Run(graph, 9, DistanceWeight), InvalidArgument);
  ws.Run(graph, 0, DistanceWeight);
  EXPECT_THROW((void)ws.DistanceTo(99), InvalidArgument);
}

// ---------- RiskRouter / Eq 1 ----------

TEST(RiskRouter, PathBitRiskMilesMatchesEquationOne) {
  const RiskGraph graph = DetourGraph();
  const RiskParams params{1e4, 1e3};
  const RiskRouter router(graph, params);
  const Path path = {0, 2, 3};  // through the risky node C
  const double alpha = 0.3 + 0.3;  // c_A + c_D
  double expected = 0.0;
  // hop A->C: d + alpha * lambda_h * oh(C)
  expected += geo::GreatCircleMiles(graph.node(0).location,
                                    graph.node(2).location) +
              alpha * 1e4 * 0.10;
  // hop C->D: d + alpha * lambda_h * oh(D)
  expected += geo::GreatCircleMiles(graph.node(2).location,
                                    graph.node(3).location) +
              alpha * 1e4 * 0.0;
  EXPECT_NEAR(router.PathBitRiskMiles(path), expected, 1e-9);
}

TEST(RiskRouter, ForecastRiskEntersTheMetric) {
  RiskGraph graph = DetourGraph();
  const RiskParams params{0.0, 1e3};  // forecast-only
  graph.SetForecastRisks({0, 0, 50, 0});
  const RiskRouter router(graph, params);
  const Path path = {0, 2, 3};
  const double alpha = 0.6;
  const double miles = router.PathMiles(path);
  EXPECT_NEAR(router.PathBitRiskMiles(path), miles + alpha * 1e3 * 50, 1e-9);
}

TEST(RiskRouter, RejectsNegativeLambdas) {
  const RiskGraph graph = DetourGraph();
  EXPECT_THROW(RiskRouter(graph, RiskParams{-1, 0}), InvalidArgument);
}

TEST(RiskRouter, PathValidation) {
  const RiskGraph graph = DetourGraph();
  const RiskRouter router(graph, RiskParams{});
  EXPECT_THROW((void)router.PathBitRiskMiles({}), InvalidArgument);
  EXPECT_THROW((void)router.PathBitRiskMiles({0, 3}), InvalidArgument);
  EXPECT_THROW((void)router.PathMiles({0, 3}), InvalidArgument);
}

TEST(RiskRouter, AvoidsRiskWhenLambdaLarge) {
  const RiskGraph graph = DetourGraph();
  // Small lambda: geographic shortest (through C, the southern node, or B
  // — whichever is shorter) wins; large lambda: the safe B detour wins.
  const RiskRouter timid(graph, RiskParams{1e5, 0});
  const auto route = timid.MinRiskRoute(0, 3);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->path, (Path{0, 1, 3}));  // through safe B

  const RiskRouter neutral(graph, RiskParams{0, 0});
  const auto direct = neutral.MinRiskRoute(0, 3);
  ASSERT_TRUE(direct.has_value());
  // With zero lambdas the min bit-risk route IS the shortest route.
  const auto shortest = neutral.ShortestRoute(0, 3);
  EXPECT_EQ(direct->path, shortest->path);
}

TEST(RiskRouter, MinRiskNeverExceedsShortestBitRisk) {
  const RiskGraph graph = DetourGraph();
  for (const double lambda : {0.0, 1e2, 1e4, 1e6}) {
    const RiskRouter router(graph, RiskParams{lambda, 0});
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      for (std::size_t j = 0; j < graph.node_count(); ++j) {
        if (i == j) continue;
        const auto rr = router.MinRiskRoute(i, j);
        const auto sp = router.ShortestRoute(i, j);
        ASSERT_TRUE(rr && sp);
        EXPECT_LE(rr->bit_risk_miles, sp->bit_risk_miles + 1e-9);
        EXPECT_GE(rr->miles, sp->miles - 1e-9);
      }
    }
  }
}

// ---------- ratios ----------

TEST(Ratios, ZeroLambdaGivesZeroRatios) {
  const RiskGraph graph = DetourGraph();
  const RatioReport report = ComputeIntradomainRatios(graph, RiskParams{0, 0});
  EXPECT_NEAR(report.risk_reduction_ratio, 0.0, 1e-12);
  EXPECT_NEAR(report.distance_increase_ratio, 0.0, 1e-12);
  EXPECT_EQ(report.pair_count, 12u);  // 4*3 ordered pairs
}

TEST(Ratios, RatiosNonNegativeAndBounded) {
  const RiskGraph graph = DetourGraph();
  for (const double lambda : {1e2, 1e4, 1e6}) {
    const RatioReport report =
        ComputeIntradomainRatios(graph, RiskParams{lambda, 0});
    EXPECT_GE(report.risk_reduction_ratio, -1e-12);
    EXPECT_LT(report.risk_reduction_ratio, 1.0);
    EXPECT_GE(report.distance_increase_ratio, -1e-12);
  }
}

TEST(Ratios, MonotoneNondecreasingInLambdaOnDetourGraph) {
  const RiskGraph graph = DetourGraph();
  double previous_rr = -1.0;
  for (const double lambda : {1e1, 1e2, 1e3, 1e4, 1e5, 1e6}) {
    const RatioReport report =
        ComputeIntradomainRatios(graph, RiskParams{lambda, 0});
    EXPECT_GE(report.risk_reduction_ratio, previous_rr - 1e-9)
        << "lambda " << lambda;
    previous_rr = report.risk_reduction_ratio;
  }
}

TEST(Ratios, ParallelMatchesSequential) {
  const RiskGraph graph = DetourGraph();
  util::ThreadPool pool(4);
  const RiskParams params{1e4, 0};
  const RatioReport seq = ComputeIntradomainRatios(graph, params, nullptr);
  const RatioReport par = ComputeIntradomainRatios(graph, params, &pool);
  EXPECT_DOUBLE_EQ(seq.risk_reduction_ratio, par.risk_reduction_ratio);
  EXPECT_DOUBLE_EQ(seq.distance_increase_ratio, par.distance_increase_ratio);
  EXPECT_EQ(seq.pair_count, par.pair_count);
}

TEST(Ratios, SourceTargetSubsets) {
  const RiskGraph graph = DetourGraph();
  const RatioReport report =
      ComputeRatios(graph, RiskParams{1e4, 0}, {0}, {3});
  EXPECT_EQ(report.pair_count, 1u);
}

TEST(Ratios, DisconnectedPairsSkipped) {
  RiskGraph graph = DetourGraph();
  graph.AddNode(RiskNode{"island", geo::GeoPoint(45, -70), 0.1, 0, 0});
  const RatioReport report = ComputeIntradomainRatios(graph, RiskParams{1e4, 0});
  EXPECT_EQ(report.pair_count, 12u);  // island contributes nothing
}

// ---------- aggregate objectives ----------

TEST(Aggregate, SumMinBitRiskMatchesManualSum) {
  const RiskGraph graph = DetourGraph();
  const RiskParams params{1e4, 0};
  const RiskRouter router(graph, params);
  double expected = 0.0;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    for (std::size_t j = i + 1; j < graph.node_count(); ++j) {
      expected += router.MinRiskRoute(i, j)->bit_risk_miles;
    }
  }
  EXPECT_NEAR(AggregateMinBitRisk(graph, params), expected, 1e-9);
}

TEST(Aggregate, AddingAnEdgeNeverIncreasesObjective) {
  RiskGraph graph = DetourGraph();
  const RiskParams params{1e4, 0};
  const double before = AggregateMinBitRisk(graph, params);
  graph.AddEdgeByDistance(0, 3);
  const double after = AggregateMinBitRisk(graph, params);
  EXPECT_LE(after, before + 1e-9);
}

TEST(Aggregate, SumMinBitRiskOverSubsets) {
  const RiskGraph graph = DetourGraph();
  const RiskParams params{1e4, 0};
  const RiskRouter router(graph, params);
  const double got = SumMinBitRisk(graph, params, {0, 1}, {3});
  const double expected = router.MinRiskRoute(0, 3)->bit_risk_miles +
                          router.MinRiskRoute(1, 3)->bit_risk_miles;
  EXPECT_NEAR(got, expected, 1e-9);
}

// ---------- lambda sweep property (TEST_P) ----------

class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, RiskRouteDominatesShortestPathInBitRisk) {
  const double lambda = GetParam();
  const RiskGraph graph = DetourGraph();
  const RiskRouter router(graph, RiskParams{lambda, 0});
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    for (std::size_t j = 0; j < graph.node_count(); ++j) {
      if (i == j) continue;
      const auto rr = router.MinRiskRoute(i, j);
      const auto sp = router.ShortestRoute(i, j);
      ASSERT_TRUE(rr && sp);
      EXPECT_LE(rr->bit_risk_miles, sp->bit_risk_miles + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(0.0, 1.0, 1e2, 1e3, 1e4, 1e5, 1e6,
                                           1e8));

}  // namespace
}  // namespace riskroute::core
