// Unit tests for the util module: strings, CSV, RNG, table rendering and
// the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace riskroute::util {
namespace {

// ---------- strings ----------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWhitespaceDropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(ToUpper("Hurricane Irene 15 mph"), "HURRICANE IRENE 15 MPH");
  EXPECT_EQ(ToLower("LATITUDE 35.2"), "latitude 35.2");
}

TEST(Strings, StartsWithAndContains) {
  EXPECT_TRUE(StartsWith("corpus v1", "corpus"));
  EXPECT_FALSE(StartsWith("corpus", "corpus v1"));
  EXPECT_TRUE(Contains("HURRICANE-FORCE WINDS", "FORCE"));
  EXPECT_FALSE(Contains("abc", "abd"));
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_EQ(ParseDouble("35.2"), 35.2);
  EXPECT_EQ(ParseDouble(" -76.4 "), -76.4);
  EXPECT_EQ(ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("35.2x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("  ").has_value());
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(ParseInt("61"), 61);
  EXPECT_EQ(ParseInt("-3"), -3);
  EXPECT_FALSE(ParseInt("61.5").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
}

TEST(Strings, Format) {
  EXPECT_EQ(Format("%d miles", 90), "90 miles");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Format("%s", ""), "");
}

// ---------- csv ----------

TEST(Csv, ParsePlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"), (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("a,,c"), (CsvRow{"a", "", "c"}));
}

TEST(Csv, ParseQuotedFields) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"), (CsvRow{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x"),
            (CsvRow{"he said \"hi\"", "x"}));
}

TEST(Csv, ParseUnterminatedQuoteThrows) {
  EXPECT_THROW((void)ParseCsvLine("\"oops"), ParseError);
}

TEST(Csv, EscapeRoundTrip) {
  for (const std::string field :
       {"plain", "with,comma", "with\"quote", "with both\",\""}) {
    const CsvRow row = ParseCsvLine(EscapeCsvField(field));
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(row[0], field);
  }
}

TEST(Csv, WriterReaderRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.Write("name", "value", 3.5);
  writer.Write("a,b", 42, std::string("q\"q"));
  std::istringstream in(out.str());
  const auto rows = ReadCsv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"name", "value", "3.5"}));
  EXPECT_EQ(rows[1], (CsvRow{"a,b", "42", "q\"q"}));
}

// ---------- rng ----------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, WeightedIndexNeverPicksZeroWeight) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, ForkDecorrelatesStreams) {
  Rng root(7);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  // Streams should differ (probability of 20 identical draws ~ 0).
  bool any_different = false;
  for (int i = 0; i < 20; ++i) {
    if (a.Uniform(0, 1) != b.Uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

// ---------- table ----------

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Value"});
  table.Add("alpha", 1);
  table.Add("b", 22);
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("Name"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only one"}), InvalidArgument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(pool, 100,
                  [](std::size_t i) {
                    if (i == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPool, SingleThreadPoolRunsIterationsInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  ParallelFor(pool, 64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  // With a single worker the iterations run in index order, so the first
  // exception chronologically is the one at the lowest throwing index —
  // that is the error ParallelFor must rethrow, not a later one.
  ThreadPool pool(1);
  std::size_t executed = 0;
  try {
    ParallelFor(pool, 100, [&](std::size_t i) {
      ++executed;
      if (i == 3 || i == 50) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
  // Later iterations still ran; an exception records the error but does
  // not cancel the sweep.
  EXPECT_EQ(executed, 100u);
}

TEST(ThreadPool, SubmitWorksOnSingleThreadPool) {
  ThreadPool pool(1);
  auto a = pool.Submit([] { return 7; });
  auto b = pool.Submit([] { return 35; });
  EXPECT_EQ(a.get() + b.get(), 42);
}

}  // namespace
}  // namespace riskroute::util
