// Continental-scale suite (ctest label: scale; gated by the
// RISKROUTE_SCALE_TESTS CMake option). Runs the correctness side of
// bench/bench_scale.cpp's wall-clock story on the same scale-7 corpus:
// the ALT many-to-many path must be bitwise identical to the full
// Dijkstra sweeps, snapshots must round-trip byte-exactly at this size,
// and the scaled generator must be deterministic and anchored to the
// paper corpus at scale 1. These tests take tens of seconds each — the
// sanitizer lanes build with RISKROUTE_SCALE_TESTS=OFF.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "geo/distance.h"
#include "topology/corpus.h"
#include "topology/generator.h"
#include "util/philox.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::PairMatrix;
using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RouteEngine;
using core::RouteMetric;

// Mirrors bench/bench_scale.cpp's fixture (same scale, seed, landmark
// count, and graph construction) so the speedups the bench reports are
// measured on exactly the sweeps whose correctness is asserted here.
constexpr double kScale = 7.0;
constexpr std::uint64_t kSeed = 123;
constexpr std::size_t kLandmarks = 16;
constexpr RiskParams kParams{1e5, 1e3};

RiskGraph BuildScaledGraph(const topology::Corpus& corpus) {
  RiskGraph graph;
  std::vector<std::size_t> base(corpus.network_count());
  util::PhiloxRng rng(kSeed, 0xA17);
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    const topology::Network& net = corpus.network(n);
    base[n] = graph.node_count();
    for (const topology::Pop& pop : net.pops()) {
      RiskNode node;
      node.name = pop.name;
      node.location = pop.location;
      node.impact_fraction = 0.5 + 0.5 * rng.NextUniform();
      node.historical_risk = rng.NextUniform();
      graph.AddNode(std::move(node));
    }
  }
  std::vector<core::WeightedLink> links;
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    const topology::Network& net = corpus.network(n);
    for (const topology::Link& link : net.links()) {
      links.push_back({base[n] + link.a, base[n] + link.b,
                       geo::GreatCircleMiles(net.pop(link.a).location,
                                             net.pop(link.b).location)});
    }
  }
  for (const topology::Peering& peering : corpus.peerings()) {
    const topology::Network& na = corpus.network(peering.a);
    const topology::Network& nb = corpus.network(peering.b);
    const std::size_t ib = nb.NearestPop(na.pop(0).location);
    const std::size_t ia = na.NearestPop(nb.pop(ib).location);
    links.push_back({base[peering.a] + ia, base[peering.b] + ib,
                     geo::GreatCircleMiles(na.pop(ia).location,
                                           nb.pop(ib).location)});
  }
  graph.AddEdgesUnchecked(links);
  return graph;
}

struct ScaleFixture {
  topology::Corpus corpus;
  RiskGraph graph;
  RouteEngine dijkstra_engine;
  RouteEngine alt_engine;
  std::vector<std::size_t> sources;
  std::vector<std::size_t> targets;

  ScaleFixture()
      : corpus(topology::GenerateScaledCorpus(kScale, kSeed)),
        graph(BuildScaledGraph(corpus)),
        dijkstra_engine(graph, kParams),
        alt_engine(graph, kParams) {
    alt_engine.PrepareLandmarks(kLandmarks);
    const std::size_t n = graph.node_count();
    for (std::size_t i = 0; i < 16; ++i) sources.push_back(i * n / 16);
    for (std::size_t i = 0; i < 2; ++i) {
      targets.push_back((8 * i + 5) * n / 16);
    }
  }
};

const ScaleFixture& Fixture() {
  static const ScaleFixture fixture;
  return fixture;
}

void ExpectBitwiseEqual(const PairMatrix& a, const PairMatrix& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t i = 0; i < a.dist.size(); ++i) {
    ASSERT_EQ(a.dist[i], b.dist[i]) << "flat index " << i;
  }
}

TEST(ScaleTest, ScaledCorpusClearsFiveThousandPops) {
  const ScaleFixture& f = Fixture();
  EXPECT_GE(f.graph.node_count(), 5000u);
  // floor(7) - 1 = 6 continental backbones appended after the 23 paper
  // networks.
  ASSERT_EQ(f.corpus.network_count(), 29u);
  std::size_t continental = 0;
  for (const topology::Network& net : f.corpus.networks()) {
    if (net.name().rfind("Continental", 0) == 0) {
      ++continental;
      EXPECT_EQ(net.kind(), topology::NetworkKind::kTier1);
    }
    EXPECT_TRUE(net.IsConnected()) << net.name();
  }
  EXPECT_EQ(continental, 6u);
}

TEST(ScaleTest, ManyToManyAltMatchesDijkstraBitwise) {
  // The assertion bench_scale.cpp's BM_ScaleManyToMany* pair relies on:
  // identical PairMatrix bitwise, serial and under an 8-thread pool.
  const ScaleFixture& f = Fixture();
  const PairMatrix reference = f.dijkstra_engine.ManyToMany(
      f.sources, f.targets, RouteMetric::kDistance);
  ExpectBitwiseEqual(reference,
                     f.alt_engine.ManyToMany(f.sources, f.targets,
                                             RouteMetric::kDistance));
  util::ThreadPool pool(8);
  ExpectBitwiseEqual(reference,
                     f.alt_engine.ManyToMany(f.sources, f.targets,
                                             RouteMetric::kDistance, &pool));
  ExpectBitwiseEqual(
      f.dijkstra_engine.ManyToMany(f.sources, f.targets,
                                   RouteMetric::kBitRisk, &pool),
      f.alt_engine.ManyToMany(f.sources, f.targets, RouteMetric::kBitRisk,
                              &pool));
}

TEST(ScaleTest, SnapshotRoundTripsByteExactlyAtScale) {
  const ScaleFixture& f = Fixture();
  const std::string bytes = f.alt_engine.SnapshotBytes();
  auto loaded = RouteEngine::LoadSnapshot(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
  ASSERT_TRUE(loaded.ok()) << loaded.error().Render();
  EXPECT_EQ(loaded.value().node_count(), f.graph.node_count());
  EXPECT_EQ(loaded.value().landmark_count(), kLandmarks);
  EXPECT_EQ(loaded.value().SnapshotBytes(), bytes);
  ExpectBitwiseEqual(
      f.dijkstra_engine.ManyToMany(f.sources, f.targets,
                                   RouteMetric::kDistance),
      loaded.value().ManyToMany(f.sources, f.targets,
                                RouteMetric::kDistance));
}

TEST(ScaleTest, ScaledGeneratorIsDeterministicInScaleAndSeed) {
  // Checked at scale 2 — regenerating the scale-7 corpus twice more
  // would double this suite's runtime for no extra coverage.
  const topology::Corpus a = topology::GenerateScaledCorpus(2.0, 7);
  const topology::Corpus b = topology::GenerateScaledCorpus(2.0, 7);
  ASSERT_EQ(a.network_count(), b.network_count());
  for (std::size_t n = 0; n < a.network_count(); ++n) {
    const topology::Network& na = a.network(n);
    const topology::Network& nb = b.network(n);
    ASSERT_EQ(na.name(), nb.name());
    ASSERT_EQ(na.pop_count(), nb.pop_count());
    ASSERT_EQ(na.link_count(), nb.link_count());
    for (std::size_t i = 0; i < na.pop_count(); ++i) {
      ASSERT_EQ(na.pop(i).name, nb.pop(i).name);
      ASSERT_EQ(na.pop(i).location.latitude(), nb.pop(i).location.latitude());
      ASSERT_EQ(na.pop(i).location.longitude(),
                nb.pop(i).location.longitude());
    }
  }
  // A different seed reshuffles PoP placement somewhere.
  const topology::Corpus c = topology::GenerateScaledCorpus(2.0, 8);
  bool differs = false;
  for (std::size_t n = 0; n < a.network_count() && !differs; ++n) {
    for (std::size_t i = 0; i < a.network(n).pop_count() && !differs; ++i) {
      differs = a.network(n).pop(i).name != c.network(n).pop(i).name;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ScaleTest, ScaleOneReproducesThePaperCorpus) {
  const topology::Corpus scaled = topology::GenerateScaledCorpus(1.0, kSeed);
  const topology::Corpus paper = topology::GeneratePaperCorpus(kSeed);
  ASSERT_EQ(scaled.network_count(), paper.network_count());
  for (std::size_t n = 0; n < paper.network_count(); ++n) {
    const topology::Network& s = scaled.network(n);
    const topology::Network& p = paper.network(n);
    ASSERT_EQ(s.name(), p.name());
    ASSERT_EQ(s.kind(), p.kind());
    ASSERT_EQ(s.pop_count(), p.pop_count());
    ASSERT_EQ(s.link_count(), p.link_count());
    for (std::size_t i = 0; i < p.pop_count(); ++i) {
      ASSERT_EQ(s.pop(i).name, p.pop(i).name);
      ASSERT_EQ(s.pop(i).location.latitude(), p.pop(i).location.latitude());
      ASSERT_EQ(s.pop(i).location.longitude(),
                p.pop(i).location.longitude());
    }
    for (const topology::Link& link : p.links()) {
      ASSERT_TRUE(s.HasLink(link.a, link.b));
    }
  }
  ASSERT_EQ(scaled.peerings().size(), paper.peerings().size());
}

}  // namespace
}  // namespace riskroute
