// RouteEngine tests: the frozen CSR engine and EdgeOverlay must be
// bitwise-exact stand-ins for the legacy DijkstraWorkspace sweeps over a
// (possibly mutated) RiskGraph. Every parity check here uses EXPECT_EQ on
// doubles deliberately — the engine's contract is bitwise identity, not
// tolerance-level agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/backup_paths.h"
#include "core/edge_overlay.h"
#include "core/k_shortest.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "obs/metrics.h"
#include "provision/augmentation.h"
#include "provision/candidate_links.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::DijkstraWorkspace;
using core::EdgeOverlay;
using core::Path;
using core::RiskEdge;
using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RiskRouter;
using core::RouteEngine;
using core::RouteMetric;

/// Random connected geometric graph with random risk attributes.
RiskGraph RandomGraph(std::size_t n, double extra_edge_prob, util::Rng& rng) {
  RiskGraph graph;
  std::vector<double> fractions(n);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fractions[i] = rng.Uniform(0.01, 1.0);
    fraction_sum += fractions[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "n" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        fractions[i] / fraction_sum, rng.Uniform(0.0, 0.5),
        rng.Chance(0.3) ? rng.Uniform(0.0, 100.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j) && rng.Chance(extra_edge_prob)) {
        graph.AddEdgeByDistance(i, j);
      }
    }
  }
  return graph;
}

/// The seed's BitRiskWeight functor, verbatim: the legacy per-edge weight
/// recomputation the engine's risk plane replaces.
struct LegacyBitRiskWeight {
  const RiskGraph* graph;
  RiskParams params;
  double alpha;

  double operator()(std::size_t, const RiskEdge& edge) const {
    const RiskNode& to = graph->node(edge.to);
    return edge.miles + alpha * (params.lambda_historical * to.historical_risk +
                                 params.lambda_forecast * to.forecast_risk);
  }
};

double LegacyAlpha(const RiskGraph& graph, std::size_t i, std::size_t j) {
  return graph.node(i).impact_fraction + graph.node(j).impact_fraction;
}

/// Serial replica of the seed's AggregateMinBitRisk (Eq 4): one targeted
/// legacy Dijkstra per unordered pair, per-source sums added in index
/// order.
double LegacyAggregateMinBitRisk(const RiskGraph& graph,
                                 const RiskParams& params) {
  const std::size_t n = graph.node_count();
  DijkstraWorkspace workspace;
  std::vector<double> per_source(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double alpha = LegacyAlpha(graph, i, j);
      workspace.Run(graph, i, LegacyBitRiskWeight{&graph, params, alpha}, j);
      if (workspace.Reached(j)) sum += workspace.DistanceTo(j);
    }
    per_source[i] = sum;
  }
  double total = 0.0;
  for (const double v : per_source) total += v;
  return total;
}

/// Serial replica of the seed's SumMinBitRisk over ordered pairs.
double LegacySumMinBitRisk(const RiskGraph& graph, const RiskParams& params,
                           const std::vector<std::size_t>& sources,
                           const std::vector<std::size_t>& targets) {
  DijkstraWorkspace workspace;
  std::vector<double> per_source(sources.size(), 0.0);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const std::size_t i = sources[s];
    double sum = 0.0;
    for (const std::size_t j : targets) {
      if (j == i) continue;
      const double alpha = LegacyAlpha(graph, i, j);
      workspace.Run(graph, i, LegacyBitRiskWeight{&graph, params, alpha}, j);
      if (workspace.Reached(j)) sum += workspace.DistanceTo(j);
    }
    per_source[s] = sum;
  }
  double total = 0.0;
  for (const double v : per_source) total += v;
  return total;
}

void ExpectEngineMatchesGraph(const RouteEngine& engine,
                              const EdgeOverlay* overlay,
                              const RiskGraph& graph,
                              const RiskParams& params, double alpha) {
  DijkstraWorkspace engine_ws;
  DijkstraWorkspace legacy_ws;
  const std::size_t n = graph.node_count();
  for (std::size_t s = 0; s < n; ++s) {
    engine.Run(engine_ws, s, alpha, std::nullopt, overlay);
    legacy_ws.Run(graph, s, LegacyBitRiskWeight{&graph, params, alpha});
    for (std::size_t d = 0; d < n; ++d) {
      ASSERT_EQ(engine_ws.DistanceTo(d), legacy_ws.DistanceTo(d))
          << "sweep " << s << "->" << d << " alpha " << alpha;
      ASSERT_EQ(engine_ws.Reached(d), legacy_ws.Reached(d));
      if (legacy_ws.Reached(d)) {
        ASSERT_EQ(engine_ws.PathTo(d), legacy_ws.PathTo(d))
            << "path " << s << "->" << d;
      }
    }
  }
}

TEST(RouteEngineTest, FreezePreservesAdjacencyOrderAndScores) {
  util::Rng rng(11);
  const RiskGraph graph = RandomGraph(20, 0.2, rng);
  const RiskParams params{1e4, 1e2};
  const RiskRouter router(graph, params);
  const RouteEngine engine(graph, params);

  ASSERT_EQ(engine.node_count(), graph.node_count());
  for (std::size_t u = 0; u < graph.node_count(); ++u) {
    EXPECT_EQ(engine.NodeScore(u), router.NodeScore(u));
    EXPECT_EQ(engine.impact_fraction(u), graph.node(u).impact_fraction);
    const auto& edges = graph.OutEdges(u);
    ASSERT_EQ(engine.EdgeEnd(u) - engine.EdgeBegin(u), edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const std::size_t e = engine.EdgeBegin(u) + k;
      // CSR rows preserve adjacency-list iteration order — the property
      // the bitwise-identity contract rests on.
      EXPECT_EQ(engine.EdgeHead(e), edges[k].to);
      EXPECT_EQ(engine.EdgeMiles(e), edges[k].miles);
      EXPECT_EQ(engine.EdgeRisk(e), router.NodeScore(edges[k].to));
    }
    for (std::size_t v = 0; v < graph.node_count(); ++v) {
      EXPECT_EQ(engine.HasEdge(u, v), graph.HasEdge(u, v));
      EXPECT_EQ(engine.Alpha(u, v), router.Alpha(u, v));
    }
  }
}

TEST(RouteEngineTest, RunBitwiseMatchesLegacyDijkstra) {
  util::Rng rng(12);
  const RiskGraph graph = RandomGraph(24, 0.15, rng);
  const RiskParams params{rng.Uniform(10, 1e4), rng.Uniform(0, 10)};
  const RouteEngine engine(graph, params);

  ExpectEngineMatchesGraph(engine, nullptr, graph, params, 0.0);
  ExpectEngineMatchesGraph(engine, nullptr, graph, params,
                           LegacyAlpha(graph, 0, graph.node_count() - 1));

  // Targeted (early-exit) runs agree with the legacy targeted runs.
  DijkstraWorkspace engine_ws;
  DijkstraWorkspace legacy_ws;
  for (std::size_t s = 0; s < graph.node_count(); ++s) {
    for (std::size_t d = 0; d < graph.node_count(); ++d) {
      if (d == s) continue;
      const double alpha = LegacyAlpha(graph, s, d);
      engine.Run(engine_ws, s, alpha, d);
      legacy_ws.Run(graph, s, LegacyBitRiskWeight{&graph, params, alpha}, d);
      ASSERT_EQ(engine_ws.DistanceTo(d), legacy_ws.DistanceTo(d));
      ASSERT_EQ(engine_ws.PathTo(d), legacy_ws.PathTo(d));
    }
  }
}

TEST(RouteEngineTest, RunDistanceMatchesDistanceWeight) {
  util::Rng rng(13);
  const RiskGraph graph = RandomGraph(20, 0.2, rng);
  const RouteEngine engine(graph, RiskParams{1e5, 1e3});
  DijkstraWorkspace engine_ws;
  DijkstraWorkspace legacy_ws;
  for (std::size_t s = 0; s < graph.node_count(); ++s) {
    engine.RunDistance(engine_ws, s);
    legacy_ws.Run(graph, s, core::DistanceWeight);
    for (std::size_t d = 0; d < graph.node_count(); ++d) {
      ASSERT_EQ(engine_ws.DistanceTo(d), legacy_ws.DistanceTo(d));
    }
  }
}

TEST(RouteEngineTest, OverlayAdditionsMatchMutatedGraph) {
  util::Rng rng(14);
  RiskGraph graph = RandomGraph(18, 0.1, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);

  // Pick absent pairs to add, then mutate a copy the legacy way.
  EdgeOverlay overlay;
  RiskGraph mutated = graph;
  std::size_t added = 0;
  for (std::size_t a = 0; a < graph.node_count() && added < 4; ++a) {
    for (std::size_t b = a + 2; b < graph.node_count() && added < 4; b += 3) {
      if (graph.HasEdge(a, b)) continue;
      const double miles = rng.Uniform(50, 800);
      overlay.AddEdge(a, b, miles);
      mutated.AddEdge(a, b, miles);
      ++added;
    }
  }
  ASSERT_GT(added, 0u);
  ExpectEngineMatchesGraph(engine, &overlay, mutated, params, 0.0);
  ExpectEngineMatchesGraph(engine, &overlay, mutated, params,
                           LegacyAlpha(graph, 1, 2));
}

TEST(RouteEngineTest, OverlayRemovalsMatchMutatedGraph) {
  util::Rng rng(15);
  RiskGraph graph = RandomGraph(18, 0.25, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);

  EdgeOverlay overlay;
  RiskGraph mutated = graph;
  std::size_t removed = 0;
  for (std::size_t a = 0; a < graph.node_count() && removed < 4; a += 2) {
    const auto& edges = graph.OutEdges(a);
    if (edges.empty()) continue;
    const std::size_t b = edges.front().to;
    if (overlay.IsRemoved(a, b)) continue;
    overlay.RemoveEdge(a, b);
    mutated.RemoveEdge(a, b);
    ++removed;
  }
  ASSERT_GT(removed, 0u);
  ExpectEngineMatchesGraph(engine, &overlay, mutated, params, 0.0);
  ExpectEngineMatchesGraph(engine, &overlay, mutated, params,
                           LegacyAlpha(graph, 0, 3));
}

TEST(RouteEngineTest, OverlayDisabledNodeMatchesEdgeStrippedGraph) {
  util::Rng rng(16);
  RiskGraph graph = RandomGraph(16, 0.25, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);

  const std::size_t victim = 7;
  EdgeOverlay overlay;
  overlay.DisableNode(victim);
  RiskGraph mutated = graph;
  while (!mutated.OutEdges(victim).empty()) {
    mutated.RemoveEdge(victim, mutated.OutEdges(victim).front().to);
  }

  DijkstraWorkspace engine_ws;
  DijkstraWorkspace legacy_ws;
  const double alpha = LegacyAlpha(graph, 0, 1);
  for (std::size_t s = 0; s < graph.node_count(); ++s) {
    if (s == victim) continue;
    engine.Run(engine_ws, s, alpha, std::nullopt, &overlay);
    legacy_ws.Run(mutated, s, LegacyBitRiskWeight{&mutated, params, alpha});
    for (std::size_t d = 0; d < graph.node_count(); ++d) {
      ASSERT_EQ(engine_ws.DistanceTo(d), legacy_ws.DistanceTo(d))
          << s << "->" << d;
    }
    EXPECT_FALSE(engine_ws.Reached(victim));
  }
}

TEST(RouteEngineTest, DirectedRemovalWinsOverAddition) {
  RiskGraph graph;
  graph.AddNode(RiskNode{"a", geo::GeoPoint(40.0, -100.0), 0.4, 0.0, 0.0});
  graph.AddNode(RiskNode{"b", geo::GeoPoint(41.0, -101.0), 0.3, 0.0, 0.0});
  graph.AddNode(RiskNode{"c", geo::GeoPoint(42.0, -102.0), 0.3, 0.0, 0.0});
  graph.AddEdge(0, 1, 100.0);
  graph.AddEdge(1, 2, 100.0);
  const RouteEngine engine(graph, RiskParams{0.0, 0.0});

  EdgeOverlay overlay;
  overlay.AddEdge(0, 2, 10.0);
  overlay.RemoveDirectedEdge(0, 2);

  // Forward direction: the added shortcut is masked, so 0->2 detours.
  DijkstraWorkspace ws;
  engine.Run(ws, 0, 0.0, std::nullopt, &overlay);
  EXPECT_EQ(ws.DistanceTo(2), 200.0);
  // Reverse direction only had the addition, which survives.
  engine.Run(ws, 2, 0.0, std::nullopt, &overlay);
  EXPECT_EQ(ws.DistanceTo(0), 10.0);
  // PathWeight applies the same rule: the masked hop does not exist.
  EXPECT_THROW((void)engine.PathWeight(Path{0, 2}, 0.0, &overlay),
               InvalidArgument);
  EXPECT_EQ(engine.PathWeight(Path{2, 0}, 0.0, &overlay), 10.0);
}

TEST(RouteEngineTest, ForecastUpdatesRebuildRiskPlane) {
  util::Rng rng(17);
  RiskGraph graph = RandomGraph(14, 0.2, rng);
  const RiskParams params{1e5, 1e3};
  RouteEngine engine(graph, params);

  std::vector<double> advisory(graph.node_count());
  for (double& r : advisory) r = rng.Uniform(0.0, 50.0);

  RiskGraph forecast_graph = graph;
  forecast_graph.SetForecastRisks(advisory);
  const RouteEngine fresh(forecast_graph, params);

  engine.SetForecastRisks(advisory);
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    ASSERT_EQ(engine.NodeScore(v), fresh.NodeScore(v));
  }
  ExpectEngineMatchesGraph(engine, nullptr, forecast_graph, params,
                           LegacyAlpha(graph, 2, 5));

  engine.ClearForecastRisks();
  RiskGraph cleared_graph = graph;
  cleared_graph.ClearForecastRisks();
  const RouteEngine cleared(cleared_graph, params);
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    ASSERT_EQ(engine.NodeScore(v), cleared.NodeScore(v));
  }
}

TEST(RouteEngineTest, PathMetricsMatchRiskRouter) {
  util::Rng rng(18);
  const RiskGraph graph = RandomGraph(16, 0.2, rng);
  const RiskParams params{rng.Uniform(10, 1e4), rng.Uniform(0, 10)};
  const RiskRouter router(graph, params);
  const RouteEngine engine(graph, params);

  for (std::size_t d = 1; d < graph.node_count(); ++d) {
    const auto path = engine.FindPath(0, d, engine.Alpha(0, d));
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(engine.PathBitRiskMiles(*path), router.PathBitRiskMiles(*path));
    EXPECT_EQ(engine.PathMiles(*path), router.PathMiles(*path));
  }
  EXPECT_THROW((void)engine.PathWeight(Path{}, 0.0), InvalidArgument);
  // A path using a non-existent edge must throw, as the router does.
  std::size_t a = 0, b = 0;
  for (a = 0; a < graph.node_count(); ++a) {
    for (b = a + 1; b < graph.node_count(); ++b) {
      if (!graph.HasEdge(a, b)) goto found;
    }
  }
found:
  ASSERT_FALSE(graph.HasEdge(a, b));
  EXPECT_THROW((void)engine.PathWeight(Path{a, b}, 0.0), InvalidArgument);
}

TEST(RouteEngineTest, KShortestMatchesLegacyYen) {
  util::Rng rng(19);
  const RiskGraph graph = RandomGraph(12, 0.3, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);
  const std::size_t src = 0, dst = graph.node_count() - 1;

  for (const double alpha : {0.0, LegacyAlpha(graph, src, dst)}) {
    const auto legacy = core::KShortestPaths(
        graph, src, dst, 5,
        core::EdgeWeightFn(LegacyBitRiskWeight{&graph, params, alpha}));
    const auto mine = core::KShortestPaths(engine, src, dst, 5, alpha);
    ASSERT_EQ(mine.size(), legacy.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i].path, legacy[i].path) << "rank " << i;
      EXPECT_EQ(mine[i].weight, legacy[i].weight) << "rank " << i;
    }
  }
}

TEST(RouteEngineTest, BypassVariantsMatchLegacy) {
  util::Rng rng(20);
  const RiskGraph graph = RandomGraph(14, 0.25, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);

  for (std::size_t u = 0; u < graph.node_count(); ++u) {
    for (const RiskEdge& edge : graph.OutEdges(u)) {
      if (edge.to < u) continue;
      const double alpha = LegacyAlpha(graph, u, edge.to);
      const auto legacy = core::LinkBypass(
          graph, u, edge.to,
          core::EdgeWeightFn(LegacyBitRiskWeight{&graph, params, alpha}));
      const auto mine = core::LinkBypass(engine, u, edge.to, alpha);
      ASSERT_EQ(mine.has_value(), legacy.has_value());
      if (legacy) {
        EXPECT_EQ(*mine, *legacy);
      }
    }
  }
  for (std::size_t protect = 1; protect + 1 < graph.node_count(); ++protect) {
    const std::size_t u = 0, dst = graph.node_count() - 1;
    if (protect == u || protect == dst) continue;
    const double alpha = LegacyAlpha(graph, u, dst);
    const auto legacy = core::NodeBypass(
        graph, u, dst, protect,
        core::EdgeWeightFn(LegacyBitRiskWeight{&graph, params, alpha}));
    const auto mine = core::NodeBypass(engine, u, dst, protect, alpha);
    ASSERT_EQ(mine.has_value(), legacy.has_value());
    if (legacy) {
      EXPECT_EQ(*mine, *legacy);
    }
  }
}

TEST(RouteEngineTest, AggregatesBitwiseMatchSeedReplicaAcrossThreadCounts) {
  util::Rng rng(21);
  const RiskGraph graph = RandomGraph(16, 0.2, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);

  const double expected = LegacyAggregateMinBitRisk(graph, params);
  EXPECT_EQ(engine.AggregateMinBitRisk(), expected);

  std::vector<std::size_t> sources{0, 3, 5, 9};
  std::vector<std::size_t> targets{1, 3, 8, 12, 15};
  const double expected_sum =
      LegacySumMinBitRisk(graph, params, sources, targets);
  EXPECT_EQ(engine.SumMinBitRisk(sources, targets), expected_sum);

  const auto serial_ratios = engine.ComputeRatios(sources, targets);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(engine.AggregateMinBitRisk(&pool), expected) << threads;
    EXPECT_EQ(engine.SumMinBitRisk(sources, targets, &pool), expected_sum)
        << threads;
    const auto ratios = engine.ComputeRatios(sources, targets, &pool);
    EXPECT_EQ(ratios.risk_reduction_ratio, serial_ratios.risk_reduction_ratio);
    EXPECT_EQ(ratios.distance_increase_ratio,
              serial_ratios.distance_increase_ratio);
    EXPECT_EQ(ratios.pair_count, serial_ratios.pair_count);
  }
}

TEST(RouteEngineTest, AllPairsAdvancesRelaxationAndReuseCounters) {
  // The obs:: instrumentation must see the work: an all-pairs aggregate
  // performs n sweeps, each relaxing edges, and every sweep after a
  // thread's first reuses that thread's thread_local workspace.
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& relaxations =
      registry.GetCounter("core.route_engine.relaxations");
  obs::Counter& reuses = registry.GetCounter(
      "core.route_engine.workspace_reuses", obs::Stability::kVolatile);

  util::Rng rng(23);
  const RiskGraph graph = RandomGraph(16, 0.2, rng);
  const RouteEngine engine(graph, RiskParams{1e4, 1e2});

  const std::uint64_t relaxations_before = relaxations.Total();
  const std::uint64_t reuses_before = reuses.Total();
  (void)engine.AggregateMinBitRisk();  // serial: 16 sweeps on this thread
  EXPECT_GT(relaxations.Total(), relaxations_before);
  EXPECT_GT(reuses.Total(), reuses_before);
}

/// Seed-verbatim greedy augmentation: graph copy, AddEdge/RemoveEdge per
/// candidate, full Eq 4 re-sweep — the mutate-and-restore loop the engine
/// overlay path replaced. Used as the parity oracle.
provision::AugmentationResult LegacyGreedyAugment(
    const RiskGraph& graph, const RiskParams& params,
    const provision::AugmentationOptions& options) {
  RiskGraph working = graph;
  provision::AugmentationResult result;
  result.original_bit_risk_miles = LegacyAggregateMinBitRisk(working, params);
  std::vector<provision::CandidateLink> candidates =
      provision::EnumerateCandidateLinks(working, options.candidates);
  for (std::size_t step = 0; step < options.links_to_add; ++step) {
    double best_objective = std::numeric_limits<double>::infinity();
    std::size_t best_index = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const provision::CandidateLink& link = candidates[c];
      working.AddEdge(link.a, link.b, link.direct_miles);
      const double objective = LegacyAggregateMinBitRisk(working, params);
      working.RemoveEdge(link.a, link.b);
      if (objective < best_objective) {
        best_objective = objective;
        best_index = c;
      }
    }
    const double previous = result.steps.empty()
                                ? result.original_bit_risk_miles
                                : result.steps.back().bit_risk_miles;
    if (best_index == candidates.size() || best_objective >= previous) break;
    const provision::CandidateLink chosen = candidates[best_index];
    working.AddEdge(chosen.a, chosen.b, chosen.direct_miles);
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(best_index));
    result.steps.push_back(provision::AugmentationStep{
        chosen, best_objective, best_objective / result.original_bit_risk_miles});
  }
  return result;
}

TEST(RouteEngineTest, GreedyAugmentMatchesSeedMutateAndRestoreLoop) {
  util::Rng rng(22);
  // Sparse graph (spanning tree plus a few extras) so candidate links with
  // a > 50% mileage cut exist.
  const RiskGraph graph = RandomGraph(14, 0.03, rng);
  const RiskParams params{1e4, 1e2};

  provision::AugmentationOptions options;
  options.links_to_add = 2;
  options.candidates.max_candidates = 10;

  const auto legacy = LegacyGreedyAugment(graph, params, options);
  const RouteEngine engine(graph, params);
  const auto mine = provision::GreedyAugment(engine, options);

  EXPECT_EQ(mine.original_bit_risk_miles, legacy.original_bit_risk_miles);
  ASSERT_EQ(mine.steps.size(), legacy.steps.size());
  ASSERT_FALSE(legacy.steps.empty())
      << "fixture must exercise at least one greedy step";
  for (std::size_t i = 0; i < mine.steps.size(); ++i) {
    EXPECT_EQ(mine.steps[i].link.a, legacy.steps[i].link.a) << "step " << i;
    EXPECT_EQ(mine.steps[i].link.b, legacy.steps[i].link.b) << "step " << i;
    EXPECT_EQ(mine.steps[i].link.direct_miles, legacy.steps[i].link.direct_miles);
    EXPECT_EQ(mine.steps[i].bit_risk_miles, legacy.steps[i].bit_risk_miles) << "step " << i;
    EXPECT_EQ(mine.steps[i].fraction_of_original,
              legacy.steps[i].fraction_of_original);
  }

  // The graph-convenience overload (which freezes internally) agrees too.
  const auto via_graph = provision::GreedyAugment(graph, params, options);
  EXPECT_EQ(via_graph.original_bit_risk_miles, legacy.original_bit_risk_miles);
  ASSERT_EQ(via_graph.steps.size(), legacy.steps.size());
  for (std::size_t i = 0; i < via_graph.steps.size(); ++i) {
    EXPECT_EQ(via_graph.steps[i].bit_risk_miles, legacy.steps[i].bit_risk_miles);
  }
}

TEST(RouteEngineTest, ScanObjectivesRankLikeExactOverlayEvaluation) {
  util::Rng rng(23);
  const RiskGraph graph = RandomGraph(14, 0.03, rng);
  const RiskParams params{1e4, 1e2};
  const RouteEngine engine(graph, params);

  provision::CandidateOptions copts;
  copts.max_candidates = 8;
  const auto candidates = provision::EnumerateCandidateLinks(engine, copts);
  ASSERT_FALSE(candidates.empty());

  const EdgeOverlay none;
  const auto scanned =
      provision::ScanCandidateObjectives(engine, none, candidates);
  ASSERT_EQ(scanned.size(), candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    EdgeOverlay trial;
    trial.AddEdge(candidates[c].a, candidates[c].b, candidates[c].direct_miles);
    const double exact = engine.AggregateMinBitRisk(nullptr, &trial);
    // The incremental identity is exact up to floating-point association
    // order; a relative tolerance is the honest contract here.
    EXPECT_NEAR(scanned[c], exact, 1e-9 * std::max(1.0, std::abs(exact)))
        << "candidate " << c;
  }
}

// --- RiskGraph mutation round-trips (the overlay-equivalence proof's
// --- structural dependency) ---

void ExpectSameAdjacency(const RiskGraph& a, const RiskGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t u = 0; u < a.node_count(); ++u) {
    const auto& ea = a.OutEdges(u);
    const auto& eb = b.OutEdges(u);
    ASSERT_EQ(ea.size(), eb.size()) << "row " << u;
    for (std::size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].to, eb[k].to) << "row " << u << " slot " << k;
      EXPECT_EQ(ea[k].miles, eb[k].miles) << "row " << u << " slot " << k;
    }
  }
}

TEST(RiskGraphEdgeRoundTripTest, AddThenRemoveRestoresIterationOrder) {
  util::Rng rng(24);
  const RiskGraph original = RandomGraph(15, 0.2, rng);
  RiskGraph graph = original;

  // Find an absent pair, add it, remove it again — the exact sequence the
  // legacy candidate evaluation ran per candidate. AddEdge appends at the
  // end of both rows and RemoveEdge erases in place, so the round trip
  // must restore byte-identical adjacency iteration order. EdgeOverlay
  // additions (relaxed after the CSR row) model exactly this append
  // position.
  std::size_t added_pairs = 0;
  for (std::size_t a = 0; a < graph.node_count(); ++a) {
    for (std::size_t b = a + 1; b < graph.node_count(); ++b) {
      if (graph.HasEdge(a, b)) continue;
      graph.AddEdge(a, b, 123.0);
      graph.RemoveEdge(a, b);
      ++added_pairs;
    }
  }
  ASSERT_GT(added_pairs, 0u);
  ExpectSameAdjacency(graph, original);
}

TEST(RiskGraphEdgeRoundTripTest, RemoveThenReAddMatchesOverlaySemantics) {
  util::Rng rng(25);
  const RiskGraph original = RandomGraph(15, 0.3, rng);

  // Removing an edge and re-adding it moves it to the end of both rows
  // while preserving every other edge's relative order — precisely the
  // order an overlay removal (skip in place) plus overlay addition (after
  // the row) produces. Verify the row structure and that shortest-path
  // results are unchanged by the round trip.
  const std::size_t a = 0;
  ASSERT_FALSE(original.OutEdges(a).empty());
  const RiskEdge protected_edge = original.OutEdges(a).front();
  const std::size_t b = protected_edge.to;

  RiskGraph graph = original;
  graph.RemoveEdge(a, b);
  graph.AddEdge(a, b, protected_edge.miles);

  for (const std::size_t u : {a, b}) {
    const auto& before = original.OutEdges(u);
    const auto& after = graph.OutEdges(u);
    ASSERT_EQ(after.size(), before.size());
    const std::size_t other = (u == a) ? b : a;
    // Re-added edge sits at the end of the row...
    EXPECT_EQ(after.back().to, other);
    EXPECT_EQ(after.back().miles, protected_edge.miles);
    // ...and the surviving edges keep their relative order.
    std::vector<std::size_t> kept_before, kept_after;
    for (const RiskEdge& e : before) {
      if (e.to != other) kept_before.push_back(e.to);
    }
    for (std::size_t k = 0; k + 1 < after.size(); ++k) {
      kept_after.push_back(after[k].to);
    }
    EXPECT_EQ(kept_after, kept_before) << "row " << u;
  }

  // When the removed edge was the most recent addition, the round trip is
  // a perfect restore (the GreedyAugment accept path relies on this).
  RiskGraph appended = original;
  std::size_t x = 0, y = 0;
  bool found = false;
  for (x = 0; x < appended.node_count() && !found; ++x) {
    for (y = x + 1; y < appended.node_count(); ++y) {
      if (!appended.HasEdge(x, y)) {
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  --x;  // undo the loop increment after the inner break
  appended.AddEdge(x, y, 77.0);
  RiskGraph round_trip = appended;
  round_trip.RemoveEdge(x, y);
  round_trip.AddEdge(x, y, 77.0);
  ExpectSameAdjacency(round_trip, appended);

  // Functional consequence: distances are bitwise unchanged by the
  // general remove/re-add round trip (same edge set, same weights).
  DijkstraWorkspace before_ws, after_ws;
  for (std::size_t s = 0; s < original.node_count(); ++s) {
    before_ws.Run(original, s, core::DistanceWeight);
    after_ws.Run(graph, s, core::DistanceWeight);
    for (std::size_t d = 0; d < original.node_count(); ++d) {
      ASSERT_EQ(before_ws.DistanceTo(d), after_ws.DistanceTo(d));
    }
  }
}

}  // namespace
}  // namespace riskroute
