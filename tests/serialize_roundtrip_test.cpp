// Topology serialization round-trips: WriteGraphml -> ParseGraphml must
// be lossless (names, links, and exact coordinate bits — the writer
// prints 17 significant digits), and NetworkToGeoJson ->
// ParseGeoJsonNetwork must recover names and topology exactly with
// coordinates at the writer's 1e-6 precision (so a second write is
// byte-identical to the first). Exercised over every network of the
// paper corpus and a small scaled corpus.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "topology/corpus.h"
#include "topology/generator.h"
#include "topology/geojson.h"
#include "topology/graphml.h"
#include "topology/network.h"
#include "util/error.h"

namespace riskroute {
namespace {

using topology::GeoJsonNetworkOptions;
using topology::GraphmlOptions;
using topology::Network;
using topology::NetworkKind;

/// Topology equality: same name/kind, PoPs in the same order with equal
/// names, and the same undirected link set.
void ExpectSameTopology(const Network& expected, const Network& actual) {
  EXPECT_EQ(expected.name(), actual.name());
  EXPECT_EQ(expected.kind(), actual.kind());
  ASSERT_EQ(expected.pop_count(), actual.pop_count());
  for (std::size_t i = 0; i < expected.pop_count(); ++i) {
    EXPECT_EQ(expected.pop(i).name, actual.pop(i).name) << "pop " << i;
  }
  ASSERT_EQ(expected.link_count(), actual.link_count());
  for (const topology::Link& link : expected.links()) {
    EXPECT_TRUE(actual.HasLink(link.a, link.b))
        << expected.name() << ": link " << link.a << "-" << link.b;
  }
}

void ExpectGraphmlRoundTrip(const Network& network) {
  const GraphmlOptions options{network.name(), network.kind(), "Latitude",
                               "Longitude", "label"};
  const std::string xml = topology::WriteGraphml(network, options);
  const Network back = topology::ParseGraphml(xml, options);
  ExpectSameTopology(network, back);
  for (std::size_t i = 0; i < network.pop_count(); ++i) {
    // 17 significant digits round-trip doubles exactly.
    EXPECT_EQ(network.pop(i).location.latitude(),
              back.pop(i).location.latitude());
    EXPECT_EQ(network.pop(i).location.longitude(),
              back.pop(i).location.longitude());
  }
  // Write of the parsed network reproduces the document byte-for-byte.
  EXPECT_EQ(topology::WriteGraphml(back, options), xml);
}

void ExpectGeoJsonRoundTrip(const Network& network) {
  const std::string json = topology::NetworkToGeoJson(network);
  const Network back = topology::ParseGeoJsonNetwork(json);
  ExpectSameTopology(network, back);
  for (std::size_t i = 0; i < network.pop_count(); ++i) {
    EXPECT_NEAR(network.pop(i).location.latitude(),
                back.pop(i).location.latitude(), 1e-6);
    EXPECT_NEAR(network.pop(i).location.longitude(),
                back.pop(i).location.longitude(), 1e-6);
  }
  // The parsed coordinates are exactly the %.6f-rendered values, so the
  // second write is byte-identical to the first.
  EXPECT_EQ(topology::NetworkToGeoJson(back), json);
}

TEST(SerializeRoundtripTest, GraphmlRoundTripsEveryPaperNetwork) {
  const topology::Corpus corpus = topology::GeneratePaperCorpus();
  for (const Network& network : corpus.networks()) {
    ExpectGraphmlRoundTrip(network);
  }
}

TEST(SerializeRoundtripTest, GeoJsonRoundTripsEveryPaperNetwork) {
  const topology::Corpus corpus = topology::GeneratePaperCorpus();
  for (const Network& network : corpus.networks()) {
    ExpectGeoJsonRoundTrip(network);
  }
}

TEST(SerializeRoundtripTest, RoundTripsAScaledCorpus) {
  // Scale 2 doubles every network and adds one continental backbone —
  // big enough to exercise synthesized satellite-town PoPs and the
  // nationwide gazetteer draw, small enough for the default test lane.
  const topology::Corpus corpus = topology::GenerateScaledCorpus(2.0, 99);
  ASSERT_GT(corpus.network_count(), 23u);
  for (const Network& network : corpus.networks()) {
    ExpectGraphmlRoundTrip(network);
    ExpectGeoJsonRoundTrip(network);
  }
}

TEST(SerializeRoundtripTest, GraphmlEscapesMarkupInNames) {
  Network network("a<b>&\"net\"", NetworkKind::kRegional);
  network.AddPop({"City & Co <1>", geo::GeoPoint(30.5, -95.25)});
  network.AddPop({"Plain", geo::GeoPoint(31.5, -96.25)});
  network.AddLink(0, 1);
  ExpectGraphmlRoundTrip(network);
}

TEST(SerializeRoundtripTest, GeoJsonEscapesQuotesAndBackslashes) {
  Network network("quote\"net\\", NetworkKind::kTier1);
  network.AddPop({"He said \"hi\"\\", geo::GeoPoint(40.0, -100.0)});
  network.AddPop({"Tab\tand\nnewline", geo::GeoPoint(41.0, -101.0)});
  network.AddLink(0, 1);
  ExpectGeoJsonRoundTrip(network);
}

TEST(SerializeRoundtripTest, GeoJsonParserRejectsMalformedInput) {
  EXPECT_THROW(topology::ParseGeoJsonNetwork(""), ParseError);
  EXPECT_THROW(topology::ParseGeoJsonNetwork("{"), ParseError);
  EXPECT_THROW(topology::ParseGeoJsonNetwork(R"({"type":"Feature"})"),
               ParseError);
  // Link endpoint matching no PoP.
  EXPECT_THROW(
      topology::ParseGeoJsonNetwork(
          R"({"type":"FeatureCollection","features":[)"
          R"({"type":"Feature","geometry":{"type":"Point",)"
          R"("coordinates":[-95.0,30.0]},"properties":{"name":"A"}},)"
          R"({"type":"Feature","geometry":{"type":"LineString",)"
          R"("coordinates":[[-95.0,30.0],[-96.0,31.0]]},"properties":{}}]})"),
      ParseError);
}

TEST(SerializeRoundtripTest, GeoJsonOptionsSupplyNameAndKindFallbacks) {
  // A hand-written FeatureCollection without network/kind properties
  // takes both from the options.
  const std::string json =
      R"({"type":"FeatureCollection","features":[)"
      R"({"type":"Feature","geometry":{"type":"Point",)"
      R"("coordinates":[-90.000000,35.000000]},"properties":{"name":"Solo"}}]})";
  const Network parsed = topology::ParseGeoJsonNetwork(
      json, GeoJsonNetworkOptions{"fallback", NetworkKind::kTier1});
  EXPECT_EQ(parsed.name(), "fallback");
  EXPECT_EQ(parsed.kind(), NetworkKind::kTier1);
  ASSERT_EQ(parsed.pop_count(), 1u);
  EXPECT_EQ(parsed.pop(0).name, "Solo");
}

}  // namespace
}  // namespace riskroute
