// Unit tests for the forecast module: advisory time arithmetic, NHC text
// writer/parser round-trips (the paper's Section 4.4 NLP path), the
// embedded storm tracks, and the forecast risk / storm scope model.
#include <gtest/gtest.h>

#include "forecast/advisory.h"
#include "forecast/forecast_risk.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"
#include "forecast/writer.h"
#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::forecast {
namespace {

// ---------- advisory time ----------

TEST(AdvisoryTime, PlusHoursRollsDays) {
  const AdvisoryTime t{2005, 8, 31, 22, "EDT"};
  const AdvisoryTime u = t.PlusHours(5);
  EXPECT_EQ(u.month, 9);
  EXPECT_EQ(u.day, 1);
  EXPECT_EQ(u.hour, 3);
}

TEST(AdvisoryTime, PlusHoursRollsYears) {
  const AdvisoryTime t{2012, 12, 31, 23, "EST"};
  const AdvisoryTime u = t.PlusHours(2);
  EXPECT_EQ(u.year, 2013);
  EXPECT_EQ(u.month, 1);
  EXPECT_EQ(u.day, 1);
  EXPECT_EQ(u.hour, 1);
}

TEST(AdvisoryTime, LeapYearFebruary) {
  const AdvisoryTime t{2012, 2, 28, 23, "EST"};
  EXPECT_EQ(t.PlusHours(2).day, 29);       // 2012 is a leap year
  const AdvisoryTime u{2011, 2, 28, 23, "EST"};
  EXPECT_EQ(u.PlusHours(2).day, 1);
  EXPECT_EQ(u.PlusHours(2).month, 3);
}

TEST(AdvisoryTime, NegativeHours) {
  const AdvisoryTime t{2012, 1, 1, 1, "EST"};
  const AdvisoryTime u = t.PlusHours(-3);
  EXPECT_EQ(u.year, 2011);
  EXPECT_EQ(u.month, 12);
  EXPECT_EQ(u.day, 31);
  EXPECT_EQ(u.hour, 22);
}

TEST(AdvisoryTime, KnownWeekdays) {
  // Hurricane Katrina's Louisiana landfall was Monday, Aug 29 2005.
  EXPECT_EQ((AdvisoryTime{2005, 8, 29, 6, "CDT"}.DayOfWeek()), 1);
  // Sandy's landfall: Monday, Oct 29 2012.
  EXPECT_EQ((AdvisoryTime{2012, 10, 29, 20, "EDT"}.DayOfWeek()), 1);
}

TEST(AdvisoryTime, ToStringFormat) {
  const AdvisoryTime t{2011, 8, 26, 11, "EDT"};
  EXPECT_EQ(t.ToString(), "1100 AM EDT FRI AUG 26 2011");
  const AdvisoryTime noon{2011, 8, 26, 12, "EDT"};
  EXPECT_EQ(noon.ToString(), "1200 PM EDT FRI AUG 26 2011");
  const AdvisoryTime midnight{2011, 8, 26, 0, "EDT"};
  EXPECT_EQ(midnight.ToString(), "1200 AM EDT FRI AUG 26 2011");
}

// ---------- writer & parser ----------

Advisory SampleAdvisory() {
  Advisory advisory;
  advisory.storm_name = "IRENE";
  advisory.number = 23;
  advisory.time = AdvisoryTime{2011, 8, 26, 11, "EDT"};
  advisory.center = geo::GeoPoint(35.2, -76.4);
  advisory.max_wind_mph = 85;
  advisory.hurricane_wind_radius_miles = 90;
  advisory.tropical_wind_radius_miles = 260;
  advisory.motion_direction = "NORTH-NORTHEAST";
  advisory.motion_mph = 15;
  return advisory;
}

TEST(Writer, EmitsPaperQuotedPhrases) {
  const std::string text = RenderAdvisory(SampleAdvisory());
  // The exact phrases the paper's Section 4.4 excerpt shows.
  EXPECT_NE(text.find("THE CENTER OF HURRICANE IRENE WAS LOCATED"),
            std::string::npos);
  EXPECT_NE(text.find("LATITUDE 35.2 NORTH"), std::string::npos);
  EXPECT_NE(text.find("LONGITUDE 76.4 WEST"), std::string::npos);
  EXPECT_NE(text.find("HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES"),
            std::string::npos);
  EXPECT_NE(
      text.find("TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 260 MILES"),
      std::string::npos);
  EXPECT_NE(text.find("MOVING TOWARD THE NORTH-NORTHEAST NEAR 15 MPH"),
            std::string::npos);
}

TEST(Parser, RoundTripRecoversAllFields) {
  const Advisory original = SampleAdvisory();
  const Advisory parsed = ParseAdvisory(RenderAdvisory(original));
  EXPECT_EQ(parsed.storm_name, original.storm_name);
  EXPECT_EQ(parsed.number, original.number);
  EXPECT_EQ(parsed.time, original.time);
  EXPECT_NEAR(parsed.center.latitude(), original.center.latitude(), 0.051);
  EXPECT_NEAR(parsed.center.longitude(), original.center.longitude(), 0.051);
  EXPECT_DOUBLE_EQ(parsed.max_wind_mph, original.max_wind_mph);
  EXPECT_DOUBLE_EQ(parsed.hurricane_wind_radius_miles,
                   original.hurricane_wind_radius_miles);
  EXPECT_DOUBLE_EQ(parsed.tropical_wind_radius_miles,
                   original.tropical_wind_radius_miles);
  EXPECT_EQ(parsed.motion_direction, original.motion_direction);
  EXPECT_DOUBLE_EQ(parsed.motion_mph, original.motion_mph);
}

TEST(Parser, TropicalStormStage) {
  Advisory ts = SampleAdvisory();
  ts.storm_name = "SANDY";
  ts.max_wind_mph = 60;
  ts.hurricane_wind_radius_miles = 0;
  const Advisory parsed = ParseAdvisory(RenderAdvisory(ts));
  EXPECT_EQ(parsed.storm_name, "SANDY");
  EXPECT_FALSE(parsed.IsHurricane());
  EXPECT_DOUBLE_EQ(parsed.hurricane_wind_radius_miles, 0.0);
  EXPECT_DOUBLE_EQ(parsed.tropical_wind_radius_miles, 260.0);
}

TEST(Parser, ParsesPaperExcerptFragment) {
  // Adapted directly from the paper's Section 4.4 sample text.
  const std::string text =
      "TROPICAL STORM IRENE ADVISORY NUMBER 1\n"
      "1100 AM EDT THU AUG 25 2011\n"
      "...THE CENTER OF HURRICANE IRENE WAS LOCATED NEAR LATITUDE 35.2 "
      "NORTH...LONGITUDE 76.4 WEST. IRENE IS MOVING TOWARD THE "
      "NORTH-NORTHEAST NEAR 15 MPH...HURRICANE-FORCE WINDS EXTEND OUTWARD "
      "UP TO 90 MILES...150 KM...FROM THE CENTER...AND TROPICAL-STORM-FORCE "
      "WINDS EXTEND OUTWARD UP TO 260 MILES...415 KM...";
  const Advisory parsed = ParseAdvisory(text);
  EXPECT_EQ(parsed.storm_name, "IRENE");
  EXPECT_NEAR(parsed.center.latitude(), 35.2, 1e-9);
  EXPECT_NEAR(parsed.center.longitude(), -76.4, 1e-9);
  EXPECT_DOUBLE_EQ(parsed.hurricane_wind_radius_miles, 90);
  EXPECT_DOUBLE_EQ(parsed.tropical_wind_radius_miles, 260);
  EXPECT_DOUBLE_EQ(parsed.motion_mph, 15);
}

TEST(Parser, SouthernAndEasternHemispheres) {
  const std::string text =
      "HURRICANE TEST ADVISORY NUMBER 2\n"
      "...LOCATED NEAR LATITUDE 12.5 SOUTH...LONGITUDE 130.8 EAST...\n"
      "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 100 MILES...\n";
  const Advisory parsed = ParseAdvisory(text);
  EXPECT_NEAR(parsed.center.latitude(), -12.5, 1e-9);
  EXPECT_NEAR(parsed.center.longitude(), 130.8, 1e-9);
}

TEST(Parser, MissingFieldsThrow) {
  EXPECT_THROW((void)ParseAdvisory("no storm content at all"), ParseError);
  EXPECT_THROW(
      (void)ParseAdvisory("HURRICANE X ADVISORY NUMBER 1 LATITUDE 30.0 NORTH"),
      ParseError);  // no longitude, no radii
  EXPECT_THROW((void)ParseAdvisory(
                   "HURRICANE X ADVISORY NUMBER 1 "
                   "LATITUDE 30.0 NORTH LONGITUDE 90.0 WEST"),
               ParseError);  // no tropical radius
}

// ---------- tracks ----------

TEST(Tracks, PaperAdvisoryCounts) {
  // Section 4.4: Katrina 61, Irene 70, Sandy 60 advisories.
  EXPECT_EQ(KatrinaTrack().advisory_count, 61u);
  EXPECT_EQ(IreneTrack().advisory_count, 70u);
  EXPECT_EQ(SandyTrack().advisory_count, 60u);
  EXPECT_EQ(GenerateAdvisories(KatrinaTrack()).size(), 61u);
  EXPECT_EQ(GenerateAdvisories(IreneTrack()).size(), 70u);
  EXPECT_EQ(GenerateAdvisories(SandyTrack()).size(), 60u);
}

TEST(Tracks, WaypointsAscendInTime) {
  for (const StormTrack* track : AllTracks()) {
    for (std::size_t i = 1; i < track->waypoints.size(); ++i) {
      EXPECT_GT(track->waypoints[i].hours_from_start,
                track->waypoints[i - 1].hours_from_start)
          << track->name;
    }
  }
}

TEST(Tracks, InterpolationMatchesWaypoints) {
  const StormTrack& track = IreneTrack();
  for (const TrackPoint& wp : track.waypoints) {
    const TrackPoint p = track.At(wp.hours_from_start);
    EXPECT_NEAR(p.latitude, wp.latitude, 1e-9);
    EXPECT_NEAR(p.longitude, wp.longitude, 1e-9);
    EXPECT_NEAR(p.max_wind_mph, wp.max_wind_mph, 1e-9);
  }
  // Clamping beyond the ends.
  EXPECT_NEAR(track.At(-5).latitude, track.waypoints.front().latitude, 1e-9);
  EXPECT_NEAR(track.At(1e4).latitude, track.waypoints.back().latitude, 1e-9);
}

TEST(Tracks, KatrinaMakesLouisianaLandfall) {
  // Some advisory of Katrina must place the centre within ~80 miles of the
  // mouth of the Mississippi with hurricane-force winds.
  bool found = false;
  for (const Advisory& advisory : GenerateAdvisories(KatrinaTrack())) {
    if (geo::GreatCircleMiles(advisory.center, geo::GeoPoint(29.3, -89.6)) < 80 &&
        advisory.hurricane_wind_radius_miles > 50) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tracks, SandyHasHugeWindField) {
  double max_tropical = 0;
  for (const Advisory& advisory : GenerateAdvisories(SandyTrack())) {
    max_tropical =
        std::max(max_tropical, advisory.tropical_wind_radius_miles);
  }
  EXPECT_GE(max_tropical, 450.0);  // Sandy's famously enormous wind field
}

TEST(Tracks, GeneratedTextsParseBack) {
  for (const StormTrack* track : AllTracks()) {
    const auto advisories = GenerateAdvisories(*track);
    const auto texts = GenerateAdvisoryTexts(*track);
    ASSERT_EQ(texts.size(), advisories.size());
    for (std::size_t i = 0; i < texts.size(); i += 7) {
      const Advisory parsed = ParseAdvisory(texts[i]);
      EXPECT_EQ(parsed.storm_name, track->name);
      EXPECT_NEAR(parsed.center.latitude(), advisories[i].center.latitude(),
                  0.051);
      EXPECT_NEAR(parsed.tropical_wind_radius_miles,
                  advisories[i].tropical_wind_radius_miles, 0.51);
    }
  }
}

TEST(Tracks, AdvisoryNumbersSequential) {
  const auto advisories = GenerateAdvisories(SandyTrack());
  for (std::size_t i = 0; i < advisories.size(); ++i) {
    EXPECT_EQ(advisories[i].number, static_cast<int>(i) + 1);
  }
}

// ---------- forecast risk ----------

Advisory CenteredAdvisory(double hur_radius, double trop_radius) {
  Advisory advisory;
  advisory.storm_name = "TEST";
  advisory.center = geo::GeoPoint(30.0, -90.0);
  advisory.max_wind_mph = 100;
  advisory.hurricane_wind_radius_miles = hur_radius;
  advisory.tropical_wind_radius_miles = trop_radius;
  return advisory;
}

TEST(ForecastRisk, ZonesByDistance) {
  const Advisory advisory = CenteredAdvisory(50, 200);
  EXPECT_EQ(ZoneAt(advisory, geo::GeoPoint(30.0, -90.0)), WindZone::kHurricane);
  EXPECT_EQ(ZoneAt(advisory, geo::Destination(advisory.center, 0, 100)),
            WindZone::kTropical);
  EXPECT_EQ(ZoneAt(advisory, geo::Destination(advisory.center, 0, 300)),
            WindZone::kNone);
}

TEST(ForecastRisk, PaperRhoValues) {
  const ForecastRiskParams params;  // defaults are the paper's Section 5.3
  EXPECT_DOUBLE_EQ(params.rho_tropical, 50.0);
  EXPECT_DOUBLE_EQ(params.rho_hurricane, 100.0);
  const ForecastRiskField field(CenteredAdvisory(50, 200));
  EXPECT_DOUBLE_EQ(field.RiskAt(geo::GeoPoint(30.0, -90.0)), 100.0);
  EXPECT_DOUBLE_EQ(field.RiskAt(geo::Destination(field.advisory().center, 0, 100)),
                   50.0);
  EXPECT_DOUBLE_EQ(field.RiskAt(geo::Destination(field.advisory().center, 0, 300)),
                   0.0);
}

TEST(ForecastRisk, RejectsInvertedRho) {
  ForecastRiskParams params;
  params.rho_tropical = 100;
  params.rho_hurricane = 50;
  EXPECT_THROW(ForecastRiskField(CenteredAdvisory(50, 200), params),
               InvalidArgument);
}

TEST(ForecastRisk, TropicalOnlyStorm) {
  const ForecastRiskField field(CenteredAdvisory(0, 200));
  EXPECT_DOUBLE_EQ(field.RiskAt(geo::GeoPoint(30.0, -90.0)), 50.0);
}

TEST(StormScope, AccumulatesMaxZone) {
  StormScope scope;
  scope.Add(CenteredAdvisory(50, 200));
  Advisory moved = CenteredAdvisory(50, 200);
  moved.center = geo::GeoPoint(33.0, -90.0);
  scope.Add(moved);
  EXPECT_EQ(scope.advisory_count(), 2u);
  // Point under hurricane winds of the second advisory only.
  EXPECT_EQ(scope.MaxZoneAt(geo::GeoPoint(33.0, -90.0)), WindZone::kHurricane);
  // Point near the first centre.
  EXPECT_EQ(scope.MaxZoneAt(geo::GeoPoint(30.0, -90.0)), WindZone::kHurricane);
  // Far away from both.
  EXPECT_EQ(scope.MaxZoneAt(geo::GeoPoint(45.0, -120.0)), WindZone::kNone);
}

TEST(StormScope, CountsNetworkPops) {
  topology::Network net("n", topology::NetworkKind::kRegional);
  net.AddPop({"In, LA", geo::GeoPoint(30.0, -90.0)});
  net.AddPop({"Edge, LA", geo::GeoPoint(31.5, -90.0)});   // ~104 mi north
  net.AddPop({"Out, WA", geo::GeoPoint(47.6, -122.3)});
  const StormScope scope({CenteredAdvisory(60, 200)});
  EXPECT_EQ(scope.CountPopsInZone(net, WindZone::kHurricane), 1u);
  EXPECT_EQ(scope.CountPopsInZone(net, WindZone::kTropical), 2u);
  EXPECT_NEAR(scope.FractionPopsInZone(net, WindZone::kHurricane), 1.0 / 3.0,
              1e-12);
}

}  // namespace
}  // namespace riskroute::forecast
