// Unit and property tests for the statistics module: descriptive stats,
// regression/R^2, kernel density estimation (normalization, monotonicity,
// truncation) and bandwidth cross-validation.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <thread>

#include "geo/bounding_box.h"
#include "geo/distance.h"
#include "stats/bandwidth_cv.h"
#include "stats/kernel_density.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute::stats {
namespace {

TEST(Summary, BasicMoments) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summary, SingleValueHasZeroVariance) {
  const Summary s = Summarize({7.5});
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW((void)Summarize({}), InvalidArgument);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.125), 5.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW((void)Quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW((void)Quantile({1.0}, 1.5), InvalidArgument);
}

TEST(Regression, ExactLinearFit) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.Predict(10), 21.0, 1e-12);
}

TEST(Regression, NoTrendYieldsLowR2) {
  util::Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.Uniform(0, 1));
    ys.push_back(rng.Uniform(0, 1));
  }
  EXPECT_LT(RSquared(xs, ys), 0.05);
}

TEST(Regression, R2EqualsSquaredPearson) {
  util::Rng rng(6);
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back(x);
    ys.push_back(2 * x + rng.Gaussian(0, 3));
  }
  const double r = PearsonCorrelation(xs, ys);
  EXPECT_NEAR(RSquared(xs, ys), r * r, 1e-12);
}

TEST(Regression, Validation) {
  EXPECT_THROW((void)FitLinear({1}, {2}), InvalidArgument);
  EXPECT_THROW((void)FitLinear({1, 2}, {1, 2, 3}), InvalidArgument);
  EXPECT_THROW((void)FitLinear({3, 3, 3}, {1, 2, 3}), InvalidArgument);
}

// ---------- kernel density ----------

std::vector<geo::GeoPoint> ClusterAround(const geo::GeoPoint& center,
                                         double sigma_miles, std::size_t n,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geo::GeoPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(geo::Destination(center, rng.Uniform(0, 360),
                                      std::fabs(rng.Gaussian(0, sigma_miles))));
  }
  return points;
}

TEST(KernelDensity, Validation) {
  EXPECT_THROW(KernelDensity2D({}, 10.0), InvalidArgument);
  EXPECT_THROW(KernelDensity2D({geo::GeoPoint(40, -100)}, 0.0), InvalidArgument);
  EXPECT_THROW(KernelDensity2D({geo::GeoPoint(40, -100)}, -3.0), InvalidArgument);
}

TEST(KernelDensity, SingleEventPeakValue) {
  const geo::GeoPoint event(40, -100);
  const double sigma = 50.0;
  const KernelDensity2D kde({event}, sigma);
  // Peak density of a single 2-D Gaussian: 1 / (2 pi sigma^2).
  EXPECT_NEAR(kde.Evaluate(event), 1.0 / (2 * M_PI * sigma * sigma), 1e-9);
}

TEST(KernelDensity, DecaysWithDistance) {
  const geo::GeoPoint event(40, -100);
  const KernelDensity2D kde({event}, 50.0);
  double previous = kde.Evaluate(event);
  for (const double miles : {25.0, 50.0, 100.0, 200.0}) {
    const double value = kde.Evaluate(geo::Destination(event, 90, miles));
    EXPECT_LT(value, previous);
    previous = value;
  }
}

TEST(KernelDensity, TruncatedBeyondFiveSigma) {
  const geo::GeoPoint event(40, -100);
  const KernelDensity2D kde({event}, 20.0);
  EXPECT_EQ(kde.Evaluate(geo::Destination(event, 90, 120.0)), 0.0);
}

TEST(KernelDensity, IntegratesToRoughlyOne) {
  const auto events = ClusterAround(geo::GeoPoint(38, -97), 60, 400, 9);
  const double sigma = 40.0;
  const KernelDensity2D kde(events, sigma);
  // Numerically integrate over a generous box around the cluster.
  const geo::BoundingBox box = geo::BoundingBox::Around(events).Padded(5.0);
  const std::size_t rows = 160, cols = 160;
  const auto grid = kde.Raster(box, rows, cols);
  const double lat_step_mi =
      (box.max_lat() - box.min_lat()) / rows * 69.055;
  const double lon_step_mi = (box.max_lon() - box.min_lon()) / cols * 69.055 *
                             std::cos(geo::DegToRad((box.min_lat() + box.max_lat()) / 2));
  double integral = 0.0;
  for (const double v : grid) integral += v * lat_step_mi * lon_step_mi;
  EXPECT_NEAR(integral, 1.0, 0.08);
}

TEST(KernelDensity, MeanDensityAveragesEvaluate) {
  const auto events = ClusterAround(geo::GeoPoint(35, -90), 40, 100, 10);
  const KernelDensity2D kde(events, 30.0);
  const std::vector<geo::GeoPoint> queries = {
      geo::GeoPoint(35, -90), geo::GeoPoint(36, -91), geo::GeoPoint(34, -89)};
  double expected = 0.0;
  for (const auto& q : queries) expected += kde.Evaluate(q);
  expected /= queries.size();
  EXPECT_NEAR(kde.MeanDensity(queries), expected, 1e-15);
}

TEST(KernelDensity, EvaluateBatchMatchesScalarBitwise) {
  const auto events = ClusterAround(geo::GeoPoint(38, -97), 80, 500, 21);
  const KernelDensity2D kde(events, 35.0);
  util::Rng rng(22);
  std::vector<geo::GeoPoint> queries;
  for (int i = 0; i < 200; ++i) {
    // Mix of in-cluster queries and far-away ones (truncated to zero).
    queries.emplace_back(rng.Uniform(25, 50), rng.Uniform(-125, -65));
  }
  const std::vector<double> batch = kde.EvaluateBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Both paths run the same compiled kernel, so the match is exact —
    // strictly tighter than the 1e-12 relative-error contract.
    EXPECT_EQ(batch[i], kde.Evaluate(queries[i])) << "query " << i;
  }
}

TEST(KernelDensity, EvaluateBatchSizeMismatchThrows) {
  const KernelDensity2D kde({geo::GeoPoint(40, -100)}, 25.0);
  const std::vector<geo::GeoPoint> queries = {geo::GeoPoint(40, -100),
                                              geo::GeoPoint(41, -101)};
  std::vector<double> out(1);
  EXPECT_THROW(kde.EvaluateBatch(queries, out), InvalidArgument);
}

TEST(KernelDensity, RasterBitwiseStableAcrossThreadCounts) {
  const auto events = ClusterAround(geo::GeoPoint(38, -97), 80, 400, 23);
  const KernelDensity2D kde(events, 40.0);
  const geo::BoundingBox box = geo::BoundingBox::Around(events).Padded(1.0);
  const std::size_t rows = 17, cols = 23;
  const auto serial = kde.Raster(box, rows, cols);
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hardware}) {
    util::ThreadPool pool(threads);
    const auto parallel = kde.Raster(box, rows, cols, &pool);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "cell " << i << " with " << threads << " threads";
    }
  }
}

TEST(KernelDensity, RasterDimensions) {
  const auto events = ClusterAround(geo::GeoPoint(38, -97), 60, 50, 11);
  const KernelDensity2D kde(events, 40.0);
  const geo::BoundingBox box(30, -110, 45, -80);
  EXPECT_EQ(kde.Raster(box, 10, 20).size(), 200u);
  EXPECT_THROW((void)kde.Raster(box, 0, 20), InvalidArgument);
}

// ---------- bandwidth cross-validation ----------

TEST(BandwidthCv, LogSpacedGrid) {
  const auto grid = LogSpacedBandwidths(1.0, 100.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid.front(), 1.0, 1e-12);
  EXPECT_NEAR(grid.back(), 100.0, 1e-9);
  EXPECT_NEAR(grid[2], 10.0, 1e-9);  // geometric midpoint
  EXPECT_THROW((void)LogSpacedBandwidths(0, 10, 3), InvalidArgument);
  EXPECT_THROW((void)LogSpacedBandwidths(10, 1, 3), InvalidArgument);
  EXPECT_THROW((void)LogSpacedBandwidths(1, 10, 1), InvalidArgument);
}

TEST(BandwidthCv, LogSpacedGridEndpointsExact) {
  // The endpoints are pinned to the requested values, not exp(log(x))
  // round-trips; interior points must stay strictly increasing.
  for (const auto& [lo, hi, n] :
       {std::tuple{3.59, 298.82, 12}, {0.001, 7.0, 3}, {5.0, 5000.0, 40}}) {
    const auto grid = LogSpacedBandwidths(lo, hi, static_cast<std::size_t>(n));
    ASSERT_EQ(grid.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(grid.front(), lo);
    EXPECT_EQ(grid.back(), hi);
    for (std::size_t i = 1; i < grid.size(); ++i) {
      EXPECT_LT(grid[i - 1], grid[i]);
    }
  }
}

TEST(BandwidthCv, ParallelSelectionBitwiseMatchesSerial) {
  const auto events = ClusterAround(geo::GeoPoint(38, -95), 60.0, 400, 17);
  const auto candidates = LogSpacedBandwidths(10.0, 200.0, 5);
  const auto serial = SelectBandwidth(events, candidates);
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hardware}) {
    util::ThreadPool pool(threads);
    CrossValidationOptions options;
    options.pool = &pool;
    const auto parallel = SelectBandwidth(events, candidates, options);
    EXPECT_EQ(parallel.best_bandwidth_miles, serial.best_bandwidth_miles)
        << threads << " threads";
    ASSERT_EQ(parallel.scores.size(), serial.scores.size());
    for (std::size_t i = 0; i < serial.scores.size(); ++i) {
      EXPECT_EQ(parallel.scores[i].kl_score, serial.scores[i].kl_score)
          << "candidate " << i << " with " << threads << " threads";
    }
  }
}

TEST(BandwidthCv, PrefersTightBandwidthForTightClusters) {
  // Many tiny clusters: the CV-optimal bandwidth must be near the cluster
  // scale, far below the inter-cluster spacing.
  util::Rng rng(12);
  std::vector<geo::GeoPoint> events;
  for (int c = 0; c < 40; ++c) {
    const geo::GeoPoint center(rng.Uniform(30, 45), rng.Uniform(-110, -80));
    for (const auto& p : ClusterAround(center, 8.0, 40, 100 + c)) {
      events.push_back(p);
    }
  }
  const auto candidates = LogSpacedBandwidths(2.0, 500.0, 9);
  const auto selection = SelectBandwidth(events, candidates);
  EXPECT_LE(selection.best_bandwidth_miles, 30.0);
}

TEST(BandwidthCv, PrefersWideBandwidthForDiffuseData) {
  const auto events = ClusterAround(geo::GeoPoint(38, -95), 400.0, 300, 13);
  const auto candidates = LogSpacedBandwidths(2.0, 800.0, 9);
  const auto selection = SelectBandwidth(events, candidates);
  EXPECT_GE(selection.best_bandwidth_miles, 60.0);
}

TEST(BandwidthCv, ScoresCoverAllCandidates) {
  const auto events = ClusterAround(geo::GeoPoint(38, -95), 50.0, 100, 14);
  const auto candidates = LogSpacedBandwidths(5.0, 200.0, 6);
  const auto selection = SelectBandwidth(events, candidates);
  ASSERT_EQ(selection.scores.size(), candidates.size());
  double best = selection.scores.front().kl_score;
  for (const auto& score : selection.scores) best = std::min(best, score.kl_score);
  bool found = false;
  for (const auto& score : selection.scores) {
    if (score.bandwidth_miles == selection.best_bandwidth_miles) {
      EXPECT_DOUBLE_EQ(score.kl_score, best);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BandwidthCv, Validation) {
  const auto events = ClusterAround(geo::GeoPoint(38, -95), 50.0, 3, 15);
  EXPECT_THROW((void)SelectBandwidth(events, {}), InvalidArgument);
  CrossValidationOptions options;
  options.folds = 5;
  EXPECT_THROW((void)SelectBandwidth(events, {10.0}, options), InvalidArgument);
}

TEST(BandwidthCv, DeterministicForFixedSeed) {
  const auto events = ClusterAround(geo::GeoPoint(38, -95), 50.0, 200, 16);
  const auto candidates = LogSpacedBandwidths(5.0, 200.0, 5);
  const auto a = SelectBandwidth(events, candidates);
  const auto b = SelectBandwidth(events, candidates);
  EXPECT_EQ(a.best_bandwidth_miles, b.best_bandwidth_miles);
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.scores[i].kl_score, b.scores[i].kl_score);
  }
}

}  // namespace
}  // namespace riskroute::stats
