// Property tests for the Monte Carlo ensemble engine's determinism
// contract: draws are pure functions of (seed, k), exported statistics
// and the stable metrics section are bitwise identical across worker
// counts and scenario-index permutations, and the path-mask sweep skip is
// an exact (not approximate) optimization. Every invariance check uses
// EXPECT_EQ on doubles and full JSON strings deliberately — the contract
// is bitwise identity, not tolerance-level agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "hazard/synthesis.h"
#include "obs/metrics.h"
#include "sim/ensemble.h"
#include "util/error.h"
#include "util/philox.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::RiskGraph;
using core::RiskNode;
using core::RouteEngine;
using sim::EnsembleEngine;
using sim::EnsembleOptions;
using sim::EnsembleReport;
using sim::Scenario;
using sim::ScenarioOutcome;

// ---------------------------------------------------------------------------
// Philox4x32-10 known-answer tests (Random123 kat_vectors): the generator
// must match the published round function bit for bit, or every seed's
// ensemble silently changes.

TEST(PhiloxTest, KnownAnswerZeros) {
  const auto block = util::PhiloxBlock(0, 0, 0);
  EXPECT_EQ(block[0], 0x6627e8d5u);
  EXPECT_EQ(block[1], 0xe169c58du);
  EXPECT_EQ(block[2], 0xbc57ac4cu);
  EXPECT_EQ(block[3], 0x9b00dbd8u);
}

TEST(PhiloxTest, KnownAnswerOnes) {
  const auto block = util::PhiloxBlock(0xffffffffffffffffull,
                                       0xffffffffffffffffull,
                                       0xffffffffffffffffull);
  EXPECT_EQ(block[0], 0x408f276du);
  EXPECT_EQ(block[1], 0x41c83b0eu);
  EXPECT_EQ(block[2], 0xa20bc7c6u);
  EXPECT_EQ(block[3], 0x6d5451fdu);
}

TEST(PhiloxTest, KnownAnswerPiDigits) {
  // ctr = {243f6a88 85a308d3 13198a2e 03707344}, key = {a4093822 299f31d0}.
  const auto block = util::PhiloxBlock(0x299f31d0a4093822ull,
                                       0x0370734413198a2eull,
                                       0x85a308d3243f6a88ull);
  EXPECT_EQ(block[0], 0xd16cfe09u);
  EXPECT_EQ(block[1], 0x94fdccebu);
  EXPECT_EQ(block[2], 0x5001e420u);
  EXPECT_EQ(block[3], 0x24126ea1u);
}

TEST(PhiloxTest, CursorReplaysAndStreamsDecorrelate) {
  util::PhiloxRng a(7, 3), b(7, 3), other_stream(7, 4), other_seed(8, 3);
  bool stream_differs = false;
  bool seed_differs = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t u = a.NextU64();
    EXPECT_EQ(u, b.NextU64());
    stream_differs |= u != other_stream.NextU64();
    seed_differs |= u != other_seed.NextU64();
  }
  EXPECT_TRUE(stream_differs);
  EXPECT_TRUE(seed_differs);
}

TEST(PhiloxTest, UniformAndIndexRanges) {
  util::PhiloxRng rng(99, 0);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextUniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.NextIndex(17), 17u);
  }
}

// ---------------------------------------------------------------------------
// Ensemble engine fixture: a random connected geometric graph over the
// continental US (so the synthesized hazard catalogs intersect it) and a
// frozen route engine.

RiskGraph RandomGraph(std::size_t n, double extra_edge_prob, util::Rng& rng) {
  RiskGraph graph;
  std::vector<double> fractions(n);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fractions[i] = rng.Uniform(0.01, 1.0);
    fraction_sum += fractions[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "n" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        fractions[i] / fraction_sum, rng.Uniform(0.0, 0.5),
        rng.Chance(0.3) ? rng.Uniform(0.0, 100.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j) && rng.Chance(extra_edge_prob)) {
        graph.AddEdgeByDistance(i, j);
      }
    }
  }
  return graph;
}

struct EnsembleFixture {
  RiskGraph graph;
  RouteEngine engine;
  std::vector<hazard::Catalog> catalogs;

  explicit EnsembleFixture(std::uint64_t graph_seed = 2024)
      : graph([&] {
          util::Rng rng(graph_seed);
          return RandomGraph(20, 0.12, rng);
        }()),
        engine(graph, core::RiskParams{1e5, 1e3}),
        catalogs(hazard::SynthesizeAllCatalogs()) {}
};

EnsembleOptions TestOptions(std::size_t scenarios = 48,
                            std::uint64_t seed = 2026) {
  EnsembleOptions options;
  options.scenarios = scenarios;
  options.seed = seed;
  // Widen footprints so a healthy fraction of draws hit the test graph.
  options.damage_radius_scale = 3.0;
  return options;
}

TEST(EnsembleEngineTest, ValidatesOptions) {
  const EnsembleFixture fx;
  const std::vector<hazard::Catalog> no_catalogs;
  EXPECT_THROW(EnsembleEngine(fx.engine, no_catalogs, TestOptions()),
               InvalidArgument);
  EnsembleOptions zero = TestOptions();
  zero.scenarios = 0;
  EXPECT_THROW(EnsembleEngine(fx.engine, fx.catalogs, zero), InvalidArgument);
  EnsembleOptions bad_month = TestOptions();
  bad_month.month = 13;
  EXPECT_THROW(EnsembleEngine(fx.engine, fx.catalogs, bad_month),
               InvalidArgument);
  EnsembleOptions bad_fringe = TestOptions();
  bad_fringe.fringe_factor = 0.5;
  EXPECT_THROW(EnsembleEngine(fx.engine, fx.catalogs, bad_fringe),
               InvalidArgument);
}

TEST(EnsembleEngineTest, DrawIsPureFunctionOfSeedAndIndex) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  // Draw out of order, repeatedly: scenario k never changes.
  for (const std::uint64_t k : {7u, 0u, 31u, 7u, 31u, 0u}) {
    const Scenario first = ensemble.Draw(k);
    const Scenario again = ensemble.Draw(k);
    EXPECT_EQ(first.index, k);
    EXPECT_EQ(first.type, again.type);
    EXPECT_EQ(first.center.latitude(), again.center.latitude());
    EXPECT_EQ(first.center.longitude(), again.center.longitude());
    EXPECT_EQ(first.radius_miles, again.radius_miles);
    EXPECT_EQ(first.failed_nodes, again.failed_nodes);
    EXPECT_EQ(first.severed_edges, again.severed_edges);
  }
}

TEST(EnsembleEngineTest, DrawsExerciseEveryFailureMode) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  bool saw_failed_node = false;
  bool saw_severed_edge = false;
  bool saw_empty = false;
  for (std::uint64_t k = 0; k < 192; ++k) {
    const Scenario scenario = ensemble.Draw(k);
    saw_failed_node |= !scenario.failed_nodes.empty();
    saw_severed_edge |= !scenario.severed_edges.empty();
    saw_empty |=
        scenario.failed_nodes.empty() && scenario.severed_edges.empty();
    EXPECT_TRUE(std::is_sorted(scenario.failed_nodes.begin(),
                               scenario.failed_nodes.end()));
    EXPECT_TRUE(std::is_sorted(scenario.severed_edges.begin(),
                               scenario.severed_edges.end()));
    for (const std::uint32_t id : scenario.severed_edges) {
      ASSERT_LT(id, ensemble.edge_count());
    }
  }
  EXPECT_TRUE(saw_failed_node);
  EXPECT_TRUE(saw_severed_edge);
  EXPECT_TRUE(saw_empty);
}

TEST(EnsembleEngineTest, StatisticsBitwiseIdenticalAcrossThreadCounts) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  const std::string serial = ensemble.Run(nullptr).ToJson();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(serial, ensemble.Run(&pool).ToJson())
        << "report diverged with " << threads << " worker threads";
  }
}

TEST(EnsembleEngineTest, StableMetricsBitwiseIdenticalAcrossThreadCounts) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  auto stable_dump = [&](std::size_t threads) {
    obs::MetricsRegistry::Global().Reset();
    util::ThreadPool pool(threads);
    (void)ensemble.Run(&pool);
    return obs::MetricsRegistry::Global().DumpJson(/*include_volatile=*/false);
  };
  const std::string one = stable_dump(1);
  EXPECT_EQ(one, stable_dump(2));
  EXPECT_EQ(one, stable_dump(8));
  obs::MetricsRegistry::Global().Reset();
}

TEST(EnsembleEngineTest, OutcomesInvariantUnderScenarioPermutation) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  std::vector<std::uint64_t> ids(32);
  std::iota(ids.begin(), ids.end(), 0);
  util::ThreadPool pool(4);
  const std::vector<ScenarioOutcome> ordered =
      ensemble.EvaluateScenarios(ids, &pool);

  std::vector<std::uint64_t> shuffled = ids;
  util::Rng rng(5);
  std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
  const std::vector<ScenarioOutcome> permuted =
      ensemble.EvaluateScenarios(shuffled, &pool);
  for (std::size_t s = 0; s < shuffled.size(); ++s) {
    const ScenarioOutcome& a = ordered[shuffled[s]];
    const ScenarioOutcome& b = permuted[s];
    EXPECT_EQ(a.delta_bit_risk_miles, b.delta_bit_risk_miles);
    EXPECT_EQ(a.failed_pops, b.failed_pops);
    EXPECT_EQ(a.severed_links, b.severed_links);
    EXPECT_EQ(a.endpoint_pairs, b.endpoint_pairs);
    EXPECT_EQ(a.disconnected_pairs, b.disconnected_pairs);
    EXPECT_EQ(a.failed_edge_ids, b.failed_edge_ids);
  }
}

TEST(EnsembleEngineTest, SeedSensitivity) {
  const EnsembleFixture fx;
  const EnsembleEngine a(fx.engine, fx.catalogs, TestOptions(48, 2026));
  const EnsembleEngine same(fx.engine, fx.catalogs, TestOptions(48, 2026));
  const EnsembleEngine other(fx.engine, fx.catalogs, TestOptions(48, 2027));

  // Same seed, independently constructed engines: identical JSON export.
  EXPECT_EQ(a.Run().ToJson(), same.Run().ToJson());

  // Different seeds: some draw must differ.
  bool differs = false;
  for (std::uint64_t k = 0; k < 48 && !differs; ++k) {
    const Scenario x = a.Draw(k);
    const Scenario y = other.Draw(k);
    differs = x.center.latitude() != y.center.latitude() ||
              x.failed_nodes != y.failed_nodes ||
              x.severed_edges != y.severed_edges;
  }
  EXPECT_TRUE(differs);
}

TEST(EnsembleEngineTest, EmptyScenarioMatchesBaselineExactly) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  Scenario empty;
  empty.index = 0;
  const ScenarioOutcome outcome = ensemble.Evaluate(empty);
  EXPECT_EQ(outcome.delta_bit_risk_miles, 0.0);
  EXPECT_EQ(outcome.failed_pops, 0u);
  EXPECT_EQ(outcome.severed_links, 0u);
  EXPECT_EQ(outcome.endpoint_pairs, 0u);
  EXPECT_EQ(outcome.disconnected_pairs, 0u);
  EXPECT_TRUE(outcome.failed_edge_ids.empty());
}

/// Re-evaluates a scenario with NO path-mask skip: every alive, baseline-
/// connected pair pays a targeted overlay Dijkstra. The engine's skip must
/// be invisible in the outcome.
ScenarioOutcome BruteForceEvaluate(const EnsembleFixture& fx,
                                   const EnsembleEngine& ensemble,
                                   const Scenario& scenario) {
  ScenarioOutcome outcome;
  outcome.failed_pops =
      static_cast<std::uint32_t>(scenario.failed_nodes.size());
  outcome.severed_links =
      static_cast<std::uint32_t>(scenario.severed_edges.size());
  const std::size_t n = fx.engine.node_count();
  std::vector<bool> dead(n, false);
  for (const std::size_t v : scenario.failed_nodes) dead[v] = true;
  const core::EdgeOverlay overlay = ensemble.OverlayFor(scenario);
  core::DijkstraWorkspace base_ws;
  core::DijkstraWorkspace ws;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      fx.engine.Run(base_ws, i, fx.engine.Alpha(i, j), j);
      if (!base_ws.Reached(j)) continue;
      if (dead[i] || dead[j]) {
        ++outcome.endpoint_pairs;
        continue;
      }
      fx.engine.Run(ws, i, fx.engine.Alpha(i, j), j, &overlay);
      if (ws.Reached(j)) {
        outcome.delta_bit_risk_miles +=
            ws.DistanceTo(j) - base_ws.DistanceTo(j);
      } else {
        ++outcome.disconnected_pairs;
      }
    }
  }
  return outcome;
}

TEST(EnsembleEngineTest, PathMaskSkipIsExact) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  std::size_t checked = 0;
  for (std::uint64_t k = 0; k < 64 && checked < 8; ++k) {
    const Scenario scenario = ensemble.Draw(k);
    if (scenario.failed_nodes.empty() && scenario.severed_edges.empty()) {
      continue;
    }
    ++checked;
    const ScenarioOutcome fast = ensemble.Evaluate(scenario);
    const ScenarioOutcome brute = BruteForceEvaluate(fx, ensemble, scenario);
    EXPECT_EQ(fast.delta_bit_risk_miles, brute.delta_bit_risk_miles);
    EXPECT_EQ(fast.endpoint_pairs, brute.endpoint_pairs);
    EXPECT_EQ(fast.disconnected_pairs, brute.disconnected_pairs);
  }
  EXPECT_GE(checked, 4u);
}

TEST(EnsembleEngineTest, ReportAggregatesAreConsistent) {
  const EnsembleFixture fx;
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, TestOptions());
  const EnsembleReport report = ensemble.Run();
  EXPECT_EQ(report.scenarios, 48u);
  EXPECT_EQ(report.seed, 2026u);
  EXPECT_EQ(report.baseline_pairs, ensemble.baseline_pairs());
  EXPECT_EQ(report.baseline_bit_risk_miles,
            ensemble.baseline_bit_risk_miles());
  EXPECT_LE(report.delta_min, report.delta_p5);
  EXPECT_LE(report.delta_p5, report.delta_p50);
  EXPECT_LE(report.delta_p50, report.delta_p95);
  EXPECT_LE(report.delta_p95, report.delta_max);
  EXPECT_GE(report.delta_variance, 0.0);
  for (const auto& link : report.criticality) {
    EXPECT_LT(link.a, link.b);
    EXPECT_GT(link.failures, 0u);
  }
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\": \"riskroute.ensemble.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"criticality\""), std::string::npos);
}

TEST(EnsembleEngineTest, SeasonFilterRestrictsEventMonths) {
  const EnsembleFixture fx;
  EnsembleOptions options = TestOptions();
  options.month = 9;  // hurricane season
  const EnsembleEngine ensemble(fx.engine, fx.catalogs, options);
  // Every draw must come from an event in September's season; the draw
  // itself only exposes the footprint, so check indirectly: the annual
  // and seasonal engines disagree on some draw.
  const EnsembleEngine annual(fx.engine, fx.catalogs, TestOptions());
  bool differs = false;
  for (std::uint64_t k = 0; k < 32 && !differs; ++k) {
    const Scenario s = ensemble.Draw(k);
    const Scenario a = annual.Draw(k);
    differs = s.center.latitude() != a.center.latitude() ||
              s.type != a.type;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace riskroute
