// Regression wall for the fuzz-hardened ingestion boundary.
//
// Every named ParserBug case below reproduced a crash, silent
// mis-parse, or undefined behaviour before the hardening pass (the
// triggering inputs are archived under fuzz/corpus/); the property
// tests pin the round-trip contracts the fuzz harnesses check
// continuously. Runs under the `sanitize` label so ASan/UBSan replay
// the whole wall.
#include <climits>
#include <cstdint>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "forecast/advisory.h"
#include "forecast/parser.h"
#include "forecast/streaming.h"
#include "forecast/writer.h"
#include "geo/geo_point.h"
#include "server/wire.h"
#include "hazard/catalog.h"
#include "hazard/catalog_io.h"
#include "sim/ensemble.h"
#include "obs/metrics.h"
#include "tools/args.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/parse_result.h"
#include "util/rng.h"

namespace riskroute {
namespace {

using util::CsvLimits;
using util::CsvRow;
using util::ParseErrorKind;

std::uint64_t CounterTotal(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Total();
}

// ---------------------------------------------------------------------------
// ParseResult / ParseDiagnostic plumbing.

TEST(ParseResult, RendersKindAndPosition) {
  const auto result = util::ParseResult<int>::Failure(
      ParseErrorKind::kBadSyntax, "unterminated quoted CSV field", 12, 3, 7);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().Render(),
            "unterminated quoted CSV field (line 3, column 7) [bad_syntax]");
}

TEST(ParseResult, ValueOrThrowBridgesToParseError) {
  const auto bad = util::ParseResult<int>::Failure(ParseErrorKind::kBadNumber,
                                                   "not a number");
  EXPECT_THROW((void)bad.ValueOrThrow(), ParseError);
  const util::ParseResult<int> good(42);
  EXPECT_EQ(good.ValueOrThrow(), 42);
}

// ---------------------------------------------------------------------------
// ParserBug #1: CSV round trip was lossy. EscapeCsvField quotes embedded
// newlines, but ReadCsv used to treat every physical line as a record, so
// anything CsvWriter wrote with a '\n' or "\r\n" in a field came back
// corrupted (split rows, stray quotes).

TEST(CsvRoundTrip, EmbeddedNewlineSurvivesWriteRead) {
  const std::vector<CsvRow> rows = {
      {"multi\nline", "plain"},
      {"crlf\r\nfield", "comma,and\"quote"},
      {"", "trailing"},
  };
  std::ostringstream out;
  util::CsvWriter writer(out);
  for (const CsvRow& row : rows) writer.WriteRow(row);

  std::istringstream in(out.str());
  const auto parsed = util::ReadCsvResult(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().Render();
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvRoundTrip, QuotedFieldSpansPhysicalLines) {
  std::istringstream in("\"a\nb\",x\n1,2\n");
  const auto parsed = util::ReadCsvResult(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().Render();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0], (CsvRow{"a\nb", "x"}));
  EXPECT_EQ(parsed.value()[1], (CsvRow{"1", "2"}));
}

TEST(CsvRoundTrip, RandomRowsProperty) {
  // Deterministic property sweep over the writer's full escapable
  // alphabet. Rows that are a single empty field are excluded: the
  // writer emits them as a blank line, which the reader (by contract)
  // skips as a record separator.
  static constexpr char kAlphabet[] = "ab,\"\n\r x0";
  util::Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<CsvRow> rows;
    const int n_rows = static_cast<int>(rng.UniformInt(1, 8));
    for (int r = 0; r < n_rows; ++r) {
      CsvRow row;
      const int n_fields = static_cast<int>(rng.UniformInt(1, 5));
      for (int f = 0; f < n_fields; ++f) {
        std::string field;
        const int len = static_cast<int>(rng.UniformInt(0, 12));
        for (int k = 0; k < len; ++k) {
          field.push_back(kAlphabet[rng.UniformInt(0, 8)]);
        }
        row.push_back(std::move(field));
      }
      if (row.size() == 1 && row[0].empty()) row[0] = "x";
      rows.push_back(std::move(row));
    }
    std::ostringstream out;
    util::CsvWriter writer(out);
    for (const CsvRow& row : rows) writer.WriteRow(row);
    std::istringstream in(out.str());
    const auto parsed = util::ReadCsvResult(in);
    ASSERT_TRUE(parsed.ok()) << parsed.error().Render();
    EXPECT_EQ(parsed.value(), rows) << "trial " << trial;
  }
}

TEST(CsvDiagnostics, UnterminatedQuotePointsAtOpeningQuote) {
  std::istringstream in("ok,row\nx,\"never closed\n");
  const auto parsed = util::ReadCsvResult(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().kind, ParseErrorKind::kBadSyntax);
  EXPECT_EQ(parsed.error().line, 2u);
  EXPECT_EQ(parsed.error().column, 3u);
}

TEST(CsvDiagnostics, LimitsBoundRowsFieldsAndBytes) {
  CsvLimits two_rows;
  two_rows.max_rows = 2;
  std::istringstream in("a\nb\nc\n");
  const auto rows = util::ReadCsvResult(in, two_rows);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.error().kind, ParseErrorKind::kLimitExceeded);

  CsvLimits tiny_field;
  tiny_field.max_field_bytes = 4;
  const auto field = util::ParseCsvLineResult("toolong", tiny_field);
  ASSERT_FALSE(field.ok());
  EXPECT_EQ(field.error().kind, ParseErrorKind::kLimitExceeded);

  CsvLimits two_fields;
  two_fields.max_fields_per_row = 2;
  const auto fields = util::ParseCsvLineResult("a,b,c", two_fields);
  ASSERT_FALSE(fields.ok());
  EXPECT_EQ(fields.error().kind, ParseErrorKind::kLimitExceeded);
}

TEST(CsvDiagnostics, LegacyShimKeepsThrowingContract) {
  // The one-record parser still maps "" to a single empty field (callers
  // depend on column counts), and failures still arrive as ParseError.
  EXPECT_EQ(util::ParseCsvLine(""), (CsvRow{""}));
  EXPECT_THROW((void)util::ParseCsvLine("\"open"), ParseError);
  std::istringstream in("a,\"open\n");
  EXPECT_THROW((void)util::ReadCsv(in), ParseError);
}

// ---------------------------------------------------------------------------
// ParserBug #2: AdvisoryTime::PlusHours / DayOfWeek indexed a
// days-per-month table with month - 1 without validating, so month == 0
// (the struct's tempting "unset" value) read out of bounds; large hour
// deltas also overflowed the int total. Both now validate like ToString
// and use 64-bit civil-day arithmetic.

TEST(AdvisoryTime, MonthZeroIsRejectedNotOutOfBounds) {
  forecast::AdvisoryTime t;
  t.month = 0;
  EXPECT_FALSE(forecast::IsValidCivil(t));
  EXPECT_THROW((void)t.PlusHours(1), InvalidArgument);
  EXPECT_THROW((void)t.DayOfWeek(), InvalidArgument);
  EXPECT_THROW((void)t.ToString(), InvalidArgument);

  t.month = 2;
  t.day = 30;  // no Feb 30, even in leap years
  EXPECT_FALSE(forecast::IsValidCivil(t));
  EXPECT_THROW((void)t.PlusHours(1), InvalidArgument);
}

TEST(AdvisoryTime, PlusHoursRollsAcrossBoundaries) {
  forecast::AdvisoryTime t;
  t.year = 2012;
  t.month = 2;
  t.day = 28;
  t.hour = 23;
  const auto next = t.PlusHours(1);
  EXPECT_EQ(next.month, 2);
  EXPECT_EQ(next.day, 29);  // 2012 is a leap year
  const auto back = next.PlusHours(-1);
  EXPECT_EQ(back, t);

  forecast::AdvisoryTime eve;
  eve.year = 2011;
  eve.month = 12;
  eve.day = 31;
  eve.hour = 23;
  const auto newyear = eve.PlusHours(1);
  EXPECT_EQ(newyear.year, 2012);
  EXPECT_EQ(newyear.month, 1);
  EXPECT_EQ(newyear.day, 1);
  EXPECT_EQ(newyear.hour, 0);
}

TEST(AdvisoryTime, PlusHoursExtremeShiftsDoNotOverflow) {
  forecast::AdvisoryTime t;
  t.year = 2011;
  t.month = 8;
  t.day = 26;
  t.hour = 11;
  // Used to compute t.hour + hours in int; INT_MAX hours is ~245k years
  // and must round-trip exactly through the 64-bit civil-day path.
  for (const int shift : {INT_MAX, INT_MIN + 1, 8760, -8760, 25, -25}) {
    const auto shifted = t.PlusHours(shift);
    EXPECT_GE(shifted.hour, 0);
    EXPECT_LE(shifted.hour, 23);
    EXPECT_EQ(shifted.PlusHours(-shift), t) << "shift " << shift;
  }
}

TEST(AdvisoryTime, DayOfWeekMatchesKnownDates) {
  forecast::AdvisoryTime irene;  // FRI AUG 26 2011
  irene.year = 2011;
  irene.month = 8;
  irene.day = 26;
  EXPECT_EQ(irene.DayOfWeek(), 5);

  forecast::AdvisoryTime sandy;  // MON OCT 29 2012
  sandy.year = 2012;
  sandy.month = 10;
  sandy.day = 29;
  EXPECT_EQ(sandy.DayOfWeek(), 1);

  forecast::AdvisoryTime y2k;  // SAT JAN 1 2000
  y2k.year = 2000;
  y2k.month = 1;
  y2k.day = 1;
  EXPECT_EQ(y2k.DayOfWeek(), 6);
}

// ---------------------------------------------------------------------------
// Advisory bulletin parsing: hostile text must yield diagnostics, never
// foreign exception types, NaNs, or invalid civil times
// (fuzz/corpus/advisory/ archives the triggering bulletins).

constexpr std::string_view kIrene =
    "BULLETIN\n"
    "HURRICANE IRENE ADVISORY NUMBER  23\n"
    "1100 AM EDT FRI AUG 26 2011\n"
    "...THE CENTER OF HURRICANE IRENE WAS LOCATED NEAR LATITUDE 35.2 "
    "NORTH...LONGITUDE 76.4 WEST.\n"
    "MAXIMUM SUSTAINED WINDS ARE NEAR 85 MPH.\n"
    "HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES...AND "
    "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 260 MILES...\n";

TEST(AdvisoryParser, ParsesRealBulletinShape) {
  const auto result = forecast::ParseAdvisoryResult(kIrene);
  ASSERT_TRUE(result.ok()) << result.error().Render();
  const forecast::Advisory& advisory = result.value();
  EXPECT_EQ(advisory.storm_name, "IRENE");
  EXPECT_EQ(advisory.number, 23);
  EXPECT_EQ(advisory.time.hour, 11);
  EXPECT_EQ(advisory.time.day, 26);
  EXPECT_DOUBLE_EQ(advisory.center.latitude(), 35.2);
  EXPECT_DOUBLE_EQ(advisory.center.longitude(), -76.4);
  EXPECT_DOUBLE_EQ(advisory.tropical_wind_radius_miles, 260.0);
}

TEST(AdvisoryParser, OversizedBulletinHitsLimit) {
  forecast::AdvisoryLimits limits;
  limits.max_bytes = 64;
  const auto result =
      forecast::ParseAdvisoryResult(std::string(65, 'A'), limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ParseErrorKind::kLimitExceeded);

  limits.max_bytes = 1 << 20;
  limits.max_tokens = 4;
  const auto tokens = forecast::ParseAdvisoryResult("A B C D E", limits);
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.error().kind, ParseErrorKind::kLimitExceeded);
}

TEST(AdvisoryParser, MissingFieldsAreStructured) {
  const auto no_name = forecast::ParseAdvisoryResult("NOTHING HERE");
  ASSERT_FALSE(no_name.ok());
  EXPECT_EQ(no_name.error().kind, ParseErrorKind::kMissingField);

  const auto no_centre = forecast::ParseAdvisoryResult(
      "HURRICANE IRENE ADVISORY NUMBER 23");
  ASSERT_FALSE(no_centre.ok());
  EXPECT_EQ(no_centre.error().kind, ParseErrorKind::kMissingField);
}

// ParserBug #3 (part of the advisory wall): LATITUDE 999 used to leak
// geo::GeoPoint's InvalidArgument through ParseAdvisory, which documents
// ParseError — callers catching ParseError crashed on hostile input.
TEST(AdvisoryParser, AbsurdLatitudeIsBadValueNotForeignException) {
  const std::string text =
      "HURRICANE EVIL ADVISORY NUMBER 1\n"
      "...LATITUDE 999.9 NORTH...LONGITUDE 76.4 WEST...\n"
      "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 100 MILES...\n";
  const auto result = forecast::ParseAdvisoryResult(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ParseErrorKind::kBadValue);
  EXPECT_THROW((void)forecast::ParseAdvisory(text), ParseError);
}

TEST(AdvisoryParser, ImplausibleNumbersAreIgnoredNotStored) {
  // A 20-digit advisory number used to hit float->int UB; "9960 PM ...
  // AUG 99 20110" used to store hour 99 / day 99 and blow up the first
  // PlusHours call. Both now leave the struct's defaults.
  const std::string text =
      "HURRICANE EDGE ADVISORY NUMBER 99999999999999999999\n"
      "9960 PM EDT FRI AUG 99 20110\n"
      "...LATITUDE 35.2 NORTH...LONGITUDE 76.4 WEST...\n"
      "MAXIMUM SUSTAINED WINDS ARE NEAR NAN MPH.\n"
      "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 260 MILES...\n";
  const auto result = forecast::ParseAdvisoryResult(text);
  ASSERT_TRUE(result.ok()) << result.error().Render();
  const forecast::Advisory& advisory = result.value();
  EXPECT_EQ(advisory.number, 1);  // default, not truncated garbage
  EXPECT_TRUE(forecast::IsValidCivil(advisory.time));
  EXPECT_EQ(advisory.time, forecast::AdvisoryTime{});
  EXPECT_DOUBLE_EQ(advisory.max_wind_mph, 0.0);  // NAN never enters
}

TEST(AdvisoryParser, RenderedAdvisoryReparses) {
  const auto parsed = forecast::ParseAdvisoryResult(kIrene);
  ASSERT_TRUE(parsed.ok());
  const auto again =
      forecast::ParseAdvisoryResult(forecast::RenderAdvisory(parsed.value()));
  ASSERT_TRUE(again.ok()) << again.error().Render();
  EXPECT_EQ(again.value().storm_name, parsed.value().storm_name);
  EXPECT_EQ(again.value().time, parsed.value().time);
  EXPECT_DOUBLE_EQ(again.value().tropical_wind_radius_miles,
                   parsed.value().tropical_wind_radius_miles);
}

// ---------------------------------------------------------------------------
// ParserBug #4: ReadCatalogsCsv cast the year column straight to int, so
// "99999999999" truncated to garbage and "-5" sailed through; month 13
// was accepted too. All are now row-numbered kBadValue diagnostics.

std::string CatalogCsv(const std::string& data_rows) {
  return "type,latitude,longitude,year,month\n" + data_rows;
}

TEST(CatalogCsv, AbsurdYearsAreRejectedWithRowNumber) {
  for (const char* year : {"-5", "99999999999", "0", "10000"}) {
    std::istringstream in(
        CatalogCsv("FEMA Hurricane,29.95,-90.07,2005,8\n"
                   "FEMA Hurricane,29.95,-90.07," +
                   std::string(year) + ",8\n"));
    const auto result = hazard::ReadCatalogsCsvResult(in);
    ASSERT_FALSE(result.ok()) << "year " << year;
    EXPECT_EQ(result.error().kind, ParseErrorKind::kBadValue);
    EXPECT_EQ(result.error().line, 3u);
    EXPECT_NE(result.error().message.find("row 3"), std::string::npos);
  }
}

TEST(CatalogCsv, BadRowsGetDistinctKinds) {
  struct Case {
    const char* row;
    ParseErrorKind kind;
  };
  const Case cases[] = {
      {"FEMA Hurricane,29.95,-90.07,2005,13\n", ParseErrorKind::kBadValue},
      {"FEMA Hurricane,999.0,-90.07,2005,8\n", ParseErrorKind::kBadValue},
      {"Sharknado,29.95,-90.07,2005,8\n", ParseErrorKind::kBadValue},
      {"FEMA Hurricane,abc,-90.07,2005,8\n", ParseErrorKind::kBadNumber},
      {"FEMA Hurricane,29.95,-90.07,2005\n", ParseErrorKind::kBadSyntax},
  };
  for (const Case& c : cases) {
    std::istringstream in(CatalogCsv(c.row));
    const auto result = hazard::ReadCatalogsCsvResult(in);
    ASSERT_FALSE(result.ok()) << c.row;
    EXPECT_EQ(result.error().kind, c.kind) << c.row;
    EXPECT_EQ(result.error().line, 2u) << c.row;
  }

  std::istringstream empty("");
  EXPECT_EQ(hazard::ReadCatalogsCsvResult(empty).error().kind,
            ParseErrorKind::kEmptyInput);
  std::istringstream header_only("a,b\n");
  EXPECT_EQ(hazard::ReadCatalogsCsvResult(header_only).error().kind,
            ParseErrorKind::kBadHeader);
}

TEST(CatalogCsv, RowLimitIsEnforced) {
  hazard::CatalogCsvLimits limits;
  limits.max_rows = 2;
  std::istringstream in(
      CatalogCsv("FEMA Hurricane,29.95,-90.07,2005,8\n"
                 "FEMA Tornado,35.00,-97.00,1999,5\n"
                 "NOAA Wind,40.00,-80.00,2010,6\n"));
  const auto result = hazard::ReadCatalogsCsvResult(in, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ParseErrorKind::kLimitExceeded);
}

TEST(CatalogCsv, WriteReadRoundTrip) {
  const std::vector<hazard::Catalog> catalogs = {
      hazard::Catalog(hazard::HazardType::kFemaHurricane,
                      {{geo::GeoPoint(29.95, -90.07), 2005, 8},
                       {geo::GeoPoint(25.76, -80.19), 1992, 8}}),
      hazard::Catalog(hazard::HazardType::kNoaaEarthquake,
                      {{geo::GeoPoint(37.77, -122.42), 1989, 10}}),
  };
  std::istringstream in(hazard::CatalogsToCsv(catalogs));
  const auto result = hazard::ReadCatalogsCsvResult(in);
  ASSERT_TRUE(result.ok()) << result.error().Render();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].type(), hazard::HazardType::kFemaHurricane);
  EXPECT_EQ(result.value()[0].size(), 2u);
  EXPECT_EQ(result.value()[1].type(), hazard::HazardType::kNoaaEarthquake);
  EXPECT_EQ(result.value()[1].events()[0].year, 1989);
  EXPECT_NEAR(result.value()[1].events()[0].location.latitude(), 37.77, 1e-5);
}

// ---------------------------------------------------------------------------
// ParserBug #5: cli::Args silently accepted unknown options (a typo'd
// --scenaros ran with the default) and "--metrics-out --json" recorded
// metrics-out="" instead of failing. The registry parse rejects both.

std::vector<char*> Argv(std::vector<std::string>& tokens) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& token : tokens) argv.push_back(token.data());
  return argv;
}

cli::FlagRegistry TestFlags() {
  cli::FlagRegistry flags;
  flags.Value("network").Value("metrics-out").Value("trials");
  flags.Bool("json");
  return flags;
}

TEST(CliArgs, UnknownOptionIsRejected) {
  std::vector<std::string> tokens = {"riskroute", "--scenaros", "100"};
  auto argv = Argv(tokens);
  const auto result =
      cli::Args::Parse(static_cast<int>(argv.size()), argv.data(), 1,
                       TestFlags());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ParseErrorKind::kUnknownOption);
  EXPECT_NE(result.error().message.find("--scenaros"), std::string::npos);
}

TEST(CliArgs, ValueFlagFollowedByOptionIsMissingValue) {
  std::vector<std::string> tokens = {"riskroute", "--metrics-out", "--json"};
  auto argv = Argv(tokens);
  const auto result =
      cli::Args::Parse(static_cast<int>(argv.size()), argv.data(), 1,
                       TestFlags());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ParseErrorKind::kMissingValue);

  std::vector<std::string> at_end = {"riskroute", "--metrics-out"};
  auto argv2 = Argv(at_end);
  const auto result2 =
      cli::Args::Parse(static_cast<int>(argv2.size()), argv2.data(), 1,
                       TestFlags());
  ASSERT_FALSE(result2.ok());
  EXPECT_EQ(result2.error().kind, ParseErrorKind::kMissingValue);
}

TEST(CliArgs, KeyEqualsValueParses) {
  std::vector<std::string> tokens = {"riskroute", "--network=Level3",
                                     "--metrics-out=m.json", "--json",
                                     "ratios"};
  auto argv = Argv(tokens);
  const auto result =
      cli::Args::Parse(static_cast<int>(argv.size()), argv.data(), 1,
                       TestFlags());
  ASSERT_TRUE(result.ok()) << result.error().Render();
  const cli::Args& args = result.value();
  EXPECT_EQ(args.GetOr("network", ""), "Level3");
  EXPECT_EQ(args.GetOr("metrics-out", ""), "m.json");
  EXPECT_TRUE(args.Has("json"));
  EXPECT_EQ(args.positional(), std::vector<std::string>{"ratios"});
}

TEST(CliArgs, BoolFlagWithInlineValueIsBadValue) {
  std::vector<std::string> tokens = {"riskroute", "--json=yes"};
  auto argv = Argv(tokens);
  const auto result =
      cli::Args::Parse(static_cast<int>(argv.size()), argv.data(), 1,
                       TestFlags());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ParseErrorKind::kBadValue);
}

TEST(CliArgs, LegacyLenientConstructorIsUnchanged) {
  // Ad-hoc tooling still gets the guessing parser: unknown flags pass,
  // and a value flag followed by "--..." stays boolean-with-empty-value.
  std::vector<std::string> tokens = {"riskroute", "--anything", "goes",
                                     "--metrics-out", "--json"};
  auto argv = Argv(tokens);
  const cli::Args args(static_cast<int>(argv.size()), argv.data(), 1);
  EXPECT_EQ(args.GetOr("anything", ""), "goes");
  EXPECT_EQ(args.GetOr("metrics-out", "unset"), "");
  EXPECT_TRUE(args.Has("json"));
}

// ---------------------------------------------------------------------------
// Ingest metrics: accepted/rejected counts surface through the PR-3
// registry under ingest.<source>.*.

TEST(IngestMetrics, CountersTrackAcceptsAndRejects) {
  const std::uint64_t accepted0 = CounterTotal("ingest.csv.accepted");
  const std::uint64_t syntax0 = CounterTotal("ingest.csv.rejects.bad_syntax");
  const std::uint64_t unknown0 =
      CounterTotal("ingest.args.rejects.unknown_option");

  std::istringstream ok_csv("a,b\nc,d\n");
  ASSERT_TRUE(util::ReadCsvResult(ok_csv).ok());
  std::istringstream bad_csv("\"open\n");
  ASSERT_FALSE(util::ReadCsvResult(bad_csv).ok());

  std::vector<std::string> tokens = {"riskroute", "--nope"};
  auto argv = Argv(tokens);
  ASSERT_FALSE(cli::Args::Parse(static_cast<int>(argv.size()), argv.data(), 1,
                                TestFlags())
                   .ok());

  EXPECT_EQ(CounterTotal("ingest.csv.accepted"), accepted0 + 2);
  EXPECT_EQ(CounterTotal("ingest.csv.rejects.bad_syntax"), syntax0 + 1);
  EXPECT_EQ(CounterTotal("ingest.args.rejects.unknown_option"), unknown0 + 1);
}

// ---------------------------------------------------------------------------
// PR-9 additions: the streaming session's sequence guard and the
// StreamAdvisory wire frame are ingestion boundaries too — hostile or
// out-of-order input must come back as structured diagnostics, never as
// corrupted session state.

/// Tiny west-coast graph: far from kIrene's center, so replays are
/// cheap (empty footprints) and only the sequencing contract is on
/// trial.
core::RiskGraph TinyWestGraph() {
  core::RiskGraph graph;
  for (int i = 0; i < 4; ++i) {
    graph.AddNode(core::RiskNode{"pop-" + std::to_string(i),
                                 geo::GeoPoint(37.0 + i, -120.0 - i), 0.5,
                                 0.1, 0.0});
  }
  for (std::size_t i = 1; i < 4; ++i) graph.AddEdgeByDistance(i - 1, i);
  return graph;
}

std::string BulletinWithNumber(int number) {
  std::string text(kIrene);
  const std::string from = "NUMBER  23";
  text.replace(text.find(from), from.size(),
               "NUMBER " + std::to_string(number));
  return text;
}

TEST(StreamSequencing, DuplicateBulletinIsStructuredReject) {
  const core::RiskGraph graph = TinyWestGraph();
  const core::RouteEngine engine(graph, core::RiskParams{1e5, 1e3});
  forecast::StreamingReroute session(engine);
  const std::uint64_t rejects0 = CounterTotal("stream.rejects.sequence");

  ASSERT_TRUE(session.IngestText(kIrene).ok());
  const auto duplicate = session.IngestText(kIrene);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().kind, ParseErrorKind::kBadValue);
  EXPECT_EQ(duplicate.error().message,
            "duplicate advisory number 23 (session already at 23)");
  EXPECT_EQ(CounterTotal("stream.rejects.sequence"), rejects0 + 1);
  // The reject left the session where it was: the next live number lands.
  EXPECT_EQ(session.last_advisory_number(), 23);
  EXPECT_TRUE(session.IngestText(BulletinWithNumber(24)).ok());
}

TEST(StreamSequencing, OutOfOrderBulletinIsStructuredReject) {
  const core::RiskGraph graph = TinyWestGraph();
  const core::RouteEngine engine(graph, core::RiskParams{1e5, 1e3});
  forecast::StreamingReroute session(engine);

  ASSERT_TRUE(session.IngestText(kIrene).ok());
  const auto stale = session.IngestText(BulletinWithNumber(7));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().kind, ParseErrorKind::kBadValue);
  EXPECT_EQ(stale.error().message,
            "out-of-order advisory number 7 (session already at 23)");
  EXPECT_EQ(session.advisory_count(), 1u);

  // Parser diagnostics pass through IngestText verbatim — a malformed
  // bulletin is a parse reject, not a sequence reject.
  const auto garbage = session.IngestText("NOT A BULLETIN");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.error().kind, ParseErrorKind::kMissingField);
}

// ---------------------------------------------------------------------------
// StreamAdvisory wire frames: hostile mutations of a valid frame come
// back as structured rejects (the fuzz corpus archives the same shapes
// under fuzz/corpus/wire/).

std::string EncodedStreamFrame() {
  server::wire::Request request;
  request.kind = server::wire::FrameKind::kStreamAdvisory;
  request.id = 7;
  request.deadline_ms = 250;
  request.stream.bulletin = "HURRICANE WIRE ADVISORY NUMBER 1";
  request.stream.reset = false;
  request.stream.top = 3;
  return server::wire::EncodeRequest(request);
}

util::ParseResult<server::wire::Request> DecodeFrameBytes(
    const std::string& bytes) {
  const server::wire::WireLimits limits;
  const std::span<const std::uint8_t> span(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  auto frame = server::wire::DecodeSingleFrame(span, limits);
  if (!frame.ok()) return frame.error();
  return server::wire::DecodeRequestPayload(
      frame.value().header,
      {reinterpret_cast<const std::uint8_t*>(frame.value().payload.data()),
       frame.value().payload.size()},
      limits);
}

// Payload layout after the 20-byte header: u32 deadline | u8 reset |
// u32 top | u32 bulletin_len | bulletin bytes.
constexpr std::size_t kResetOffset = 20 + 4;
constexpr std::size_t kLenOffset = 20 + 4 + 1 + 4;

TEST(StreamAdvisoryWire, BadResetFlagIsBadValue) {
  std::string bytes = EncodedStreamFrame();
  bytes[kResetOffset] = '\x02';
  const auto decoded = DecodeFrameBytes(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, ParseErrorKind::kBadValue);
  EXPECT_EQ(decoded.error().message, "reset flag must be 0 or 1");
}

TEST(StreamAdvisoryWire, OversizedBulletinLengthIsLimitExceeded) {
  std::string bytes = EncodedStreamFrame();
  // Claim a bulletin one byte past the cap without supplying it: the
  // limit check must fire before any read is attempted.
  const std::uint32_t huge = 32 * 1024 + 1;
  for (int b = 0; b < 4; ++b) {
    bytes[kLenOffset + static_cast<std::size_t>(b)] =
        static_cast<char>((huge >> (8 * b)) & 0xff);
  }
  const auto decoded = DecodeFrameBytes(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().kind, ParseErrorKind::kLimitExceeded);
  EXPECT_NE(decoded.error().message.find("bulletin length"),
            std::string::npos);
}

TEST(StreamAdvisoryWire, TruncatedAndTrailingPayloadsAreRejected) {
  const std::string bytes = EncodedStreamFrame();

  // Drop the bulletin's last byte (and fix the header length so the
  // frame still spans the buffer): truncated payload.
  std::string cut = bytes.substr(0, bytes.size() - 1);
  const std::uint32_t cut_len =
      static_cast<std::uint32_t>(cut.size() - server::wire::kFrameHeaderBytes);
  for (int b = 0; b < 4; ++b) {
    cut[16 + static_cast<std::size_t>(b)] =
        static_cast<char>((cut_len >> (8 * b)) & 0xff);
  }
  const auto truncated = DecodeFrameBytes(cut);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().kind, ParseErrorKind::kBadSyntax);
  EXPECT_NE(truncated.error().message.find("truncated"), std::string::npos);

  // One spare byte after the bulletin: canonical decode rejects it.
  std::string padded = bytes + '\x00';
  const std::uint32_t pad_len = static_cast<std::uint32_t>(
      padded.size() - server::wire::kFrameHeaderBytes);
  for (int b = 0; b < 4; ++b) {
    padded[16 + static_cast<std::size_t>(b)] =
        static_cast<char>((pad_len >> (8 * b)) & 0xff);
  }
  const auto trailing = DecodeFrameBytes(padded);
  ASSERT_FALSE(trailing.ok());
}

// ---------------------------------------------------------------------------
// EnsembleOptions domain wall.
//
// The sampling knobs feed coin-flip thresholds inside Draw(); a NaN
// smuggled through any of them silently biases every comparison it
// touches (NaN < p is false, so e.g. a NaN fringe_fail_scale would
// never fail a fringe node — a mis-sample, not a crash). The engine
// constructor must reject the whole domain wall up front.

sim::EnsembleOptions SmallEnsembleOptions() {
  sim::EnsembleOptions options;
  options.scenarios = 8;
  options.seed = 11;
  return options;
}

TEST(EnsembleOptionsWall, NonFiniteAndOutOfDomainKnobsAreRejected) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  core::RiskGraph graph;
  util::Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    graph.AddNode(core::RiskNode{
        "n" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(30, 45), rng.Uniform(-110, -80)), 0.25,
        0.1, 0.0});
  }
  for (std::size_t i = 1; i < 4; ++i) graph.AddEdgeByDistance(i, i - 1);
  const core::RouteEngine engine(graph, core::RiskParams{1e5, 1e3});
  std::vector<hazard::Event> events;
  for (int m = 1; m <= 12; ++m) {
    events.push_back(
        hazard::Event{geo::GeoPoint(37.0 + 0.1 * m, -95.0), 2000 + m, m});
  }
  std::vector<hazard::Catalog> catalogs;
  catalogs.emplace_back(hazard::HazardType::kFemaHurricane, events);

  const auto rejects = [&](auto&& mutate) {
    sim::EnsembleOptions options = SmallEnsembleOptions();
    mutate(options);
    EXPECT_THROW(sim::EnsembleEngine(engine, catalogs, options),
                 InvalidArgument);
  };
  // Positive control: the defaults construct.
  EXPECT_NO_THROW(
      sim::EnsembleEngine(engine, catalogs, SmallEnsembleOptions()));

  // center_jitter: finite, non-negative miles.
  rejects([&](sim::EnsembleOptions& o) { o.center_jitter = -1.0; });
  rejects([&](sim::EnsembleOptions& o) { o.center_jitter = kNan; });
  rejects([&](sim::EnsembleOptions& o) { o.center_jitter = kInf; });
  // fringe_factor: finite multiplier >= 1 (the fringe contains the core).
  rejects([&](sim::EnsembleOptions& o) { o.fringe_factor = 0.5; });
  rejects([&](sim::EnsembleOptions& o) { o.fringe_factor = kNan; });
  rejects([&](sim::EnsembleOptions& o) { o.fringe_factor = kInf; });
  // fringe_fail_scale and link_cut_prob: probabilities.
  rejects([&](sim::EnsembleOptions& o) { o.fringe_fail_scale = -0.1; });
  rejects([&](sim::EnsembleOptions& o) { o.fringe_fail_scale = 1.5; });
  rejects([&](sim::EnsembleOptions& o) { o.fringe_fail_scale = kNan; });
  rejects([&](sim::EnsembleOptions& o) { o.link_cut_prob = -0.25; });
  rejects([&](sim::EnsembleOptions& o) { o.link_cut_prob = 2.0; });
  rejects([&](sim::EnsembleOptions& o) { o.link_cut_prob = kNan; });
  // criticality_top: at least one ranked link.
  rejects([&](sim::EnsembleOptions& o) { o.criticality_top = 0; });
}

}  // namespace
}  // namespace riskroute
