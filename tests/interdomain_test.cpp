// Tests for the interdomain engine (paper Section 6.2): merged graph
// construction, peering-edge realization at co-located PoPs, and the
// upper/lower-bound ratio computation.
#include <gtest/gtest.h>

#include "core/interdomain.h"
#include "core/risk_graph.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "geo/distance.h"
#include "hazard/risk_field.h"
#include "hazard/synthesis.h"
#include "population/assignment.h"
#include "population/census.h"
#include "topology/corpus.h"
#include "util/error.h"

namespace riskroute::core {
namespace {

using topology::Network;
using topology::NetworkKind;
using topology::Pop;

/// Two networks sharing a city (co-located PoPs in Dallas), peered at the
/// AS level, plus a third network with no peering.
struct Fixture {
  topology::Corpus corpus;
  std::unique_ptr<population::CensusModel> census;
  std::unique_ptr<hazard::HistoricalRiskField> field;
  std::vector<population::ImpactModel> impacts;

  Fixture() {
    Network tier1("Backbone", NetworkKind::kTier1);
    tier1.AddPop({"Dallas, TX", geo::GeoPoint(32.78, -96.80)});
    tier1.AddPop({"Denver, CO", geo::GeoPoint(39.74, -104.99)});
    tier1.AddPop({"Atlanta, GA", geo::GeoPoint(33.75, -84.39)});
    tier1.AddLink(0, 1);
    tier1.AddLink(0, 2);
    tier1.AddLink(1, 2);

    Network regional("TexNet", NetworkKind::kRegional);
    regional.AddPop({"Dallas, TX", geo::GeoPoint(32.80, -96.82)});  // ~2 mi
    regional.AddPop({"Houston, TX", geo::GeoPoint(29.76, -95.37)});
    regional.AddLink(0, 1);

    Network isolated("LoneStar", NetworkKind::kRegional);
    isolated.AddPop({"Austin, TX", geo::GeoPoint(30.27, -97.74)});
    isolated.AddPop({"Waco, TX", geo::GeoPoint(31.55, -97.15)});
    isolated.AddLink(0, 1);

    corpus.AddNetwork(std::move(tier1));
    corpus.AddNetwork(std::move(regional));
    corpus.AddNetwork(std::move(isolated));
    corpus.AddPeering(0, 1);  // Backbone <-> TexNet only

    population::CensusOptions census_options;
    census_options.block_count = 20000;
    census = std::make_unique<population::CensusModel>(
        population::CensusModel::Synthesize(census_options));

    util::Rng rng(4);
    std::vector<hazard::Catalog> catalogs;
    catalogs.emplace_back(
        hazard::HazardType::kFemaStorm,
        hazard::SampleMixture({{geo::GeoPoint(35.0, -97.0), 1.0, 150.0}}, 500,
                              rng));
    field = std::make_unique<hazard::HistoricalRiskField>(
        catalogs, std::vector<double>{60.0});

    for (std::size_t n = 0; n < corpus.network_count(); ++n) {
      impacts.push_back(
          population::ImpactModel::Build(corpus.network(n), *census));
    }
  }
};

TEST(RiskGraphFromNetwork, PrecomputedRiskOverloadMatchesFieldOverload) {
  Fixture f;
  const topology::Network& net = f.corpus.network(0);
  const RiskGraph from_field =
      RiskGraph::FromNetwork(net, f.impacts[0], *f.field);
  const RiskGraph from_span = RiskGraph::FromNetwork(
      net, f.impacts[0], f.field->PopRisks(net));
  ASSERT_EQ(from_span.node_count(), from_field.node_count());
  for (std::size_t i = 0; i < from_field.node_count(); ++i) {
    EXPECT_EQ(from_span.node(i).name, from_field.node(i).name);
    EXPECT_EQ(from_span.node(i).historical_risk,
              from_field.node(i).historical_risk);
    EXPECT_EQ(from_span.node(i).impact_fraction,
              from_field.node(i).impact_fraction);
  }
  ASSERT_EQ(from_span.directed_edge_count(), from_field.directed_edge_count());
  for (std::size_t v = 0; v < from_field.node_count(); ++v) {
    const auto& a = from_span.OutEdges(v);
    const auto& b = from_field.OutEdges(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].to, b[k].to);
      EXPECT_EQ(a[k].miles, b[k].miles);
    }
  }
  const std::vector<double> wrong_size(net.pop_count() + 1, 0.0);
  EXPECT_THROW(
      (void)RiskGraph::FromNetwork(net, f.impacts[0], wrong_size),
      InvalidArgument);
}

TEST(MergedGraph, NodeCountAndOriginMapping) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  EXPECT_EQ(merged.graph.node_count(), 7u);  // 3 + 2 + 2
  ASSERT_EQ(merged.origin.size(), 7u);
  for (std::size_t n = 0; n < f.corpus.network_count(); ++n) {
    for (std::size_t p = 0; p < f.corpus.network(n).pop_count(); ++p) {
      const std::size_t id = merged.GlobalId(n, p);
      EXPECT_EQ(merged.origin[id].network, n);
      EXPECT_EQ(merged.origin[id].pop, p);
    }
  }
}

TEST(MergedGraph, PeeringEdgesOnlyBetweenColocatedPeers) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  // Exactly one realized peering: Dallas(Backbone) <-> Dallas(TexNet).
  ASSERT_EQ(merged.peering_edges.size(), 1u);
  const auto [ga, gb] = merged.peering_edges.front();
  EXPECT_EQ(merged.origin[ga].network, 0u);
  EXPECT_EQ(merged.origin[gb].network, 1u);
  EXPECT_EQ(merged.origin[ga].pop, 0u);
  EXPECT_EQ(merged.origin[gb].pop, 0u);
  // LoneStar has no peering, so its nodes connect only internally.
  const std::size_t austin = merged.GlobalId(2, 0);
  EXPECT_EQ(merged.graph.OutEdges(austin).size(), 1u);
}

TEST(MergedGraph, ColocationRadiusRespected) {
  Fixture f;
  MergeOptions options;
  options.colocation_radius_miles = 0.5;  // tighter than the ~2 mi offset
  const MergedGraph merged =
      BuildMergedGraph(f.corpus, f.impacts, *f.field, options);
  EXPECT_TRUE(merged.peering_edges.empty());
}

TEST(MergedGraph, CrossNetworkRoutingWorksThroughPeering) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  // Houston (TexNet) can reach Denver (Backbone) via the Dallas peering.
  const std::size_t houston = merged.GlobalId(1, 1);
  const std::size_t denver = merged.GlobalId(0, 1);
  const core::RouteEngine engine(merged.graph, core::RiskParams{0, 0});
  const auto path = engine.FindPath(houston, denver, 0.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(path->size(), 4u);  // Houston -> Dallas_T -> Dallas_B -> Denver
}

TEST(MergedGraph, IsolatedNetworkUnreachable) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const std::size_t houston = merged.GlobalId(1, 1);
  const std::size_t austin = merged.GlobalId(2, 0);
  const core::RouteEngine engine(merged.graph, core::RiskParams{0, 0});
  EXPECT_FALSE(engine.FindPath(houston, austin, 0.0).has_value());
}

TEST(MergedGraph, Validation) {
  Fixture f;
  std::vector<population::ImpactModel> wrong;
  EXPECT_THROW((void)BuildMergedGraph(f.corpus, wrong, *f.field),
               InvalidArgument);
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  EXPECT_THROW((void)merged.GlobalId(9, 0), InvalidArgument);
  EXPECT_THROW((void)merged.GlobalId(0, 9), InvalidArgument);
}

TEST(Interdomain, RegionalTargetsCoverAllRegionalPops) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const auto targets = RegionalTargets(merged, f.corpus);
  EXPECT_EQ(targets.size(), 4u);  // TexNet 2 + LoneStar 2
}

TEST(Interdomain, RatiosComputeForPeeredRegional) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const RatioReport report =
      InterdomainRatios(merged, f.corpus, 1, RiskParams{1e5, 1e3});
  // TexNet PoPs can reach each other (LoneStar unreachable): 2 pairs.
  EXPECT_EQ(report.pair_count, 2u);
  EXPECT_GE(report.risk_reduction_ratio, 0.0);
}

TEST(Interdomain, LowerBoundNeverWorseThanUpperBound) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  const RiskParams params{1e6, 1e3};
  const RiskRouter router(merged.graph, params);
  const std::size_t houston = merged.GlobalId(1, 1);
  const std::size_t denver = merged.GlobalId(0, 1);
  const auto lower = router.MinRiskRoute(houston, denver);   // full control
  const auto upper = router.ShortestRoute(houston, denver);  // geo shortest
  ASSERT_TRUE(lower && upper);
  EXPECT_LE(lower->bit_risk_miles, upper->bit_risk_miles + 1e-9);
}

TEST(Interdomain, IndexValidation) {
  Fixture f;
  const MergedGraph merged = BuildMergedGraph(f.corpus, f.impacts, *f.field);
  EXPECT_THROW(
      (void)InterdomainRatios(merged, f.corpus, 99, RiskParams{}),
      InvalidArgument);
}

}  // namespace
}  // namespace riskroute::core
