// obs:: registry tests: sharded counters and histograms must merge to the
// exact multiset aggregate under any thread count, the JSON export's
// deterministic sections must be bitwise identical across thread counts,
// and a disabled registry must cost one branch — no allocation, no
// mutation — per record call.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

// Global allocation counter for the disabled-registry test. The default
// operator new[] forwards to operator new, so counting here covers both.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace riskroute::obs {
namespace {

/// Runs work(t) on `threads` concurrent threads.
void RunOnThreads(std::size_t threads,
                  const std::function<void(std::size_t)>& work) {
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&work, t] { work(t); });
  }
  for (std::thread& worker : pool) worker.join();
}

TEST(ObsCounter, TotalExactUnderConcurrency) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    MetricsRegistry registry;
    Counter& counter = registry.GetCounter("test.counter");
    constexpr std::uint64_t kPerThread = 100000;
    RunOnThreads(threads, [&](std::size_t) {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
    EXPECT_EQ(counter.Total(), kPerThread * threads) << threads;
  }
}

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  const std::vector<std::uint64_t> bounds{10, 100, 1000};
  Histogram& h = registry.GetHistogram("test.hist", bounds);
  // Bucket b counts v <= bounds[b]; bounds.size() is the overflow bucket.
  for (const std::uint64_t v : {0, 10, 11, 100, 999, 1000, 1001, 5000}) {
    h.Record(v);
  }
  const Histogram::Totals t = h.Snapshot();
  ASSERT_EQ(t.counts.size(), 4u);
  EXPECT_EQ(t.counts[0], 2u);  // 0, 10
  EXPECT_EQ(t.counts[1], 2u);  // 11, 100
  EXPECT_EQ(t.counts[2], 2u);  // 999, 1000
  EXPECT_EQ(t.counts[3], 2u);  // 1001, 5000
  EXPECT_EQ(t.count, 8u);
  EXPECT_EQ(t.sum, 0u + 10 + 11 + 100 + 999 + 1000 + 1001 + 5000);
  EXPECT_EQ(t.min, 0u);
  EXPECT_EQ(t.max, 5000u);
}

TEST(ObsHistogram, SnapshotIsPureFunctionOfRecordedMultiset) {
  // The same multiset of values, partitioned across 1/2/8 threads, must
  // produce identical merged totals (order-independent integer merges).
  constexpr std::size_t kValues = 4096;
  std::vector<std::uint64_t> values(kValues);
  for (std::size_t i = 0; i < kValues; ++i) {
    values[i] = (i * 2654435761u) % 100000;  // deterministic spread
  }
  Histogram::Totals reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    MetricsRegistry registry;
    Histogram& h =
        registry.GetHistogram("test.hist", ExponentialBounds(1, 4, 10));
    RunOnThreads(threads, [&](std::size_t t) {
      for (std::size_t i = t; i < kValues; i += threads) h.Record(values[i]);
    });
    const Histogram::Totals totals = h.Snapshot();
    if (threads == 1) {
      reference = totals;
      continue;
    }
    EXPECT_EQ(totals.counts, reference.counts) << threads;
    EXPECT_EQ(totals.count, reference.count) << threads;
    EXPECT_EQ(totals.sum, reference.sum) << threads;
    EXPECT_EQ(totals.min, reference.min) << threads;
    EXPECT_EQ(totals.max, reference.max) << threads;
  }
}

TEST(ObsRegistry, DumpJsonBitwiseIdenticalAcrossThreadCounts) {
  // Stable counters/histograms plus a volatile wall-clock timing: the
  // include_volatile=false document must come out byte-for-byte identical
  // regardless of how many threads did the (same) work.
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    MetricsRegistry registry;
    Counter& items = registry.GetCounter("work.items");
    Histogram& sizes =
        registry.GetHistogram("work.sizes", ExponentialBounds(1, 2, 12));
    Histogram& step_ns = registry.GetTiming("work.step_ns");
    RunOnThreads(threads, [&](std::size_t t) {
      for (std::size_t i = t; i < 1000; i += threads) {
        const ScopedTimer timer(step_ns);  // volatile: excluded from dump
        items.Add(i % 7);
        sizes.Record(i);
      }
    });
    const std::string dump = registry.DumpJson(/*include_volatile=*/false);
    EXPECT_NE(dump.find("\"work.items\""), std::string::npos);
    EXPECT_NE(dump.find("\"work.sizes\""), std::string::npos);
    // The timing was recorded but must not appear in a deterministic dump.
    EXPECT_EQ(dump.find("\"work.step_ns"), std::string::npos);
    if (threads == 1) {
      reference = dump;
      continue;
    }
    EXPECT_EQ(dump, reference) << "thread count " << threads;
  }
}

TEST(ObsRegistry, VolatileMetricsLandInVolatileSections) {
  MetricsRegistry registry;
  (void)registry.GetCounter("a.stable_counter");
  Counter& vol = registry.GetCounter("a.volatile_counter",
                                     Stability::kVolatile);
  vol.Add(3);
  Histogram& timing = registry.GetTiming("a.stage.total_ns");
  timing.Record(42);
  const std::string dump = registry.DumpJson(/*include_volatile=*/true);
  const std::size_t stable_at = dump.find("\"stable\"");
  const std::size_t volatile_at = dump.find("\"volatile\"");
  ASSERT_NE(stable_at, std::string::npos);
  ASSERT_NE(volatile_at, std::string::npos);
  EXPECT_LT(dump.find("\"a.stable_counter\""), volatile_at);
  EXPECT_GT(dump.find("\"a.volatile_counter\""), volatile_at);
  // Timings (name ends in _ns) get their own section after the volatile
  // counters, regardless of registration order.
  EXPECT_GT(dump.find("\"a.stage.total_ns\""), dump.find("\"timings\""));
}

TEST(ObsRegistry, HandlesAreStableAndNamesDeduplicate) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.y.z");
  Counter& b = registry.GetCounter("x.y.z");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Total(), 5u);
  registry.Reset();
  EXPECT_EQ(a.Total(), 0u);  // handles survive Reset
}

TEST(ObsRegistry, DisabledRegistryRecordsNothingAndNeverAllocates) {
  MetricsRegistry registry;
  // Resolve every handle (and the trace scope's name strings) up front;
  // registration is the only part of the API allowed to allocate.
  Counter& counter = registry.GetCounter("d.counter");
  Gauge& gauge = registry.GetGauge("d.gauge");
  Histogram& hist =
      registry.GetHistogram("d.hist", ExponentialBounds(1, 2, 8));
  Histogram& timing = registry.GetTiming("d.step_ns");
  TraceScope scope(registry, "d.stage");
  counter.Add(7);
  gauge.Set(7);
  hist.Record(7);

  registry.SetEnabled(false);
  const std::uint64_t allocations_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter.Add(1);
    gauge.Set(99);
    gauge.SetMax(99);
    hist.Record(123456);
    const ScopedTimer timer(timing);
    const TraceSpan span(scope);
  }
  const std::uint64_t allocations_after =
      g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(allocations_after - allocations_before, 0u);

  // Nothing recorded while disabled; prior values retained.
  EXPECT_EQ(counter.Total(), 7u);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(hist.Snapshot().count, 1u);
  EXPECT_EQ(timing.Snapshot().count, 0u);

  registry.SetEnabled(true);
  counter.Add(1);
  EXPECT_EQ(counter.Total(), 8u);
}

TEST(ObsTrace, NestedSpansSplitSelfAndTotalTime) {
  MetricsRegistry registry;
  TraceScope outer(registry, "t.outer");
  TraceScope inner(registry, "t.inner");
  {
    const TraceSpan outer_span(outer);
    const TraceSpan inner_span(inner);
  }
  const Histogram::Totals outer_total =
      registry.GetTiming("t.outer.total_ns").Snapshot();
  const Histogram::Totals outer_self =
      registry.GetTiming("t.outer.self_ns").Snapshot();
  const Histogram::Totals inner_total =
      registry.GetTiming("t.inner.total_ns").Snapshot();
  EXPECT_EQ(outer_total.count, 1u);
  EXPECT_EQ(outer_self.count, 1u);
  EXPECT_EQ(inner_total.count, 1u);
  // Self time excludes the nested span: self = total - child <= total,
  // and the outer span fully contains the inner one.
  EXPECT_LE(outer_self.sum, outer_total.sum);
  EXPECT_LE(inner_total.sum, outer_total.sum);
}

TEST(ObsBounds, ExponentialBoundsGrowByFactor) {
  const auto bounds = ExponentialBounds(16, 4, 5);
  const std::vector<std::uint64_t> expected{16, 64, 256, 1024, 4096};
  EXPECT_EQ(bounds, expected);
}

}  // namespace
}  // namespace riskroute::obs
