// forecast::StreamingReroute tests — the incremental advisory re-route
// session behind `riskroute stream` and the StreamAdvisory wire kind.
//
// The load-bearing contract is differential: after every ingested
// advisory, the session's per-pair answers (bit-risk-miles, digest, and
// the settled path itself) are bitwise identical to a from-scratch
// rebuild of the engine at that advisory — across all three embedded
// track libraries (Katrina 61 + Irene 70 + Sandy 60 advisories) and for
// any worker-pool size. The diff algebra (Compose), the sequencing
// guard, the cache-hit accounting, and the api::Service session reuse
// ride on top.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "api/service.h"
#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "forecast/forecast_risk.h"
#include "forecast/streaming.h"
#include "forecast/tracks.h"
#include "geo/geo_point.h"
#include "obs/metrics.h"
#include "server/handlers.h"
#include "server/wire.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RouteEngine;

constexpr RiskParams kParams{1e5, 1e3};
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Synthetic CONUS-box graph with a zero forecast plane (the streaming
/// session owns that dimension). Same idiom as the api/service tests.
RiskGraph StreamGraph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  RiskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "pop-" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        rng.Uniform(0.01, 1.0), rng.Uniform(0.0, 0.5), 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i + 3 < n; i += 3) graph.AddEdgeByDistance(i, i + 3);
  return graph;
}

/// From-scratch state at one advisory: forecast plane rebuilt over the
/// whole graph, engine refrozen, one targeted sweep per pair — the
/// naive path the streaming session must reproduce bitwise.
struct Rebuilt {
  std::vector<forecast::PairAnswer> answers;
  std::vector<core::Path> paths;
};

Rebuilt RebuildAt(const RiskGraph& base, const forecast::Advisory& advisory,
                  std::size_t landmarks) {
  RiskGraph graph = base;
  const forecast::ForecastRiskField field(advisory);
  std::vector<double> risks(graph.node_count());
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    risks[v] = field.RiskAt(graph.node(v).location);
  }
  graph.SetForecastRisks(risks);
  RouteEngine engine(graph, kParams);
  if (landmarks > 0) engine.PrepareLandmarks(landmarks);

  Rebuilt out;
  core::DijkstraWorkspace ws;
  const std::size_t n = graph.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      forecast::PairAnswer answer;
      answer.src = static_cast<std::uint32_t>(i);
      answer.dst = static_cast<std::uint32_t>(j);
      engine.Run(ws, i, engine.Alpha(i, j), j);
      core::Path path;
      if (ws.Reached(j)) {
        answer.bit_risk_miles = ws.DistanceTo(j);
        path = ws.PathTo(j);
        answer.digest = forecast::PathDigest(path);
      } else {
        answer.bit_risk_miles = kInf;
        answer.digest = 0;
      }
      out.answers.push_back(answer);
      out.paths.push_back(std::move(path));
    }
  }
  return out;
}

/// Replays every advisory of every embedded storm through one session
/// per storm, asserting bitwise identity with the from-scratch rebuild
/// after each step.
void DifferentialReplay(std::size_t threads, std::size_t landmarks,
                        bool all_storms) {
  const RiskGraph graph = StreamGraph(24, 77);
  RouteEngine engine(graph, kParams);
  if (landmarks > 0) engine.PrepareLandmarks(landmarks);

  std::optional<util::ThreadPool> pool;
  forecast::StreamOptions options;
  if (threads > 1) {
    pool.emplace(threads);
    options.pool = &*pool;
  }

  std::vector<const forecast::StormTrack*> tracks;
  if (all_storms) {
    tracks = forecast::AllTracks();
  } else {
    tracks = {&forecast::IreneTrack()};
  }
  std::size_t advisories_with_scope = 0;
  std::size_t total_moves = 0;
  for (const forecast::StormTrack* track : tracks) {
    forecast::StreamingReroute session(engine, options);
    const auto advisories = forecast::GenerateAdvisories(*track);
    ASSERT_EQ(advisories.size(), track->advisory_count);
    for (const forecast::Advisory& advisory : advisories) {
      auto diff = session.Ingest(advisory);
      ASSERT_TRUE(diff.ok()) << track->name << " #" << advisory.number;
      if (diff.value().pops_in_scope > 0) ++advisories_with_scope;
      total_moves += diff.value().pairs_moved;
      const Rebuilt rebuilt = RebuildAt(graph, advisory, landmarks);
      const auto answers = session.Answers();
      ASSERT_EQ(answers.size(), rebuilt.answers.size());
      for (std::size_t p = 0; p < answers.size(); ++p) {
        ASSERT_EQ(answers[p], rebuilt.answers[p])
            << track->name << " #" << advisory.number << " pair ("
            << answers[p].src << ", " << answers[p].dst << ") threads "
            << threads;
        ASSERT_EQ(session.CurrentPath(answers[p].src, answers[p].dst),
                  rebuilt.paths[p])
            << track->name << " #" << advisory.number << " pair ("
            << answers[p].src << ", " << answers[p].dst << ")";
      }
    }
    EXPECT_EQ(session.advisory_count(), advisories.size());
  }
  // Guard against a vacuous pass: the replay must actually land storms
  // on the graph and move answers, not just agree about nothing.
  EXPECT_GT(advisories_with_scope, 0u);
  EXPECT_GT(total_moves, 0u);
}

// The tentpole contract: all 191 embedded advisories, bitwise, at each
// gated thread count.
TEST(StreamingDifferential, AllStormsSerial) { DifferentialReplay(1, 0, true); }
TEST(StreamingDifferential, AllStormsTwoThreads) {
  DifferentialReplay(2, 0, true);
}
TEST(StreamingDifferential, AllStormsEightThreads) {
  DifferentialReplay(8, 0, true);
}

// Goal-directed flavor: with ALT landmarks prepared the session's sweeps
// run A*; identity must hold against an equally-prepared rebuild.
TEST(StreamingDifferential, IreneWithAltLandmarks) {
  DifferentialReplay(2, 4, false);
}

TEST(StreamingTest, ConstructorRejectsNonBaselineEngine) {
  RiskGraph graph = StreamGraph(8, 5);
  std::vector<double> risks(graph.node_count(), 0.0);
  risks[3] = 12.0;
  graph.SetForecastRisks(risks);
  const RouteEngine engine(graph, kParams);
  EXPECT_THROW(forecast::StreamingReroute session(engine), InvalidArgument);
}

TEST(StreamingTest, EmptyFootprintAdvisoryYieldsEmptyDiff) {
  const RiskGraph graph = StreamGraph(16, 21);
  const RouteEngine engine(graph, kParams);
  forecast::StreamingReroute session(engine);
  const auto baseline = session.Answers();

  // Mid-Atlantic center, far outside the kd-tree's PoP cloud.
  forecast::Advisory advisory;
  advisory.storm_name = "NOWHERE";
  advisory.number = 1;
  advisory.center = geo::GeoPoint(31.0, -40.0);
  advisory.tropical_wind_radius_miles = 120.0;
  advisory.hurricane_wind_radius_miles = 40.0;
  auto diff = session.Ingest(advisory);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value().empty());
  EXPECT_EQ(diff.value().pops_in_scope, 0u);
  EXPECT_EQ(diff.value().pairs_recomputed, 0u);
  EXPECT_TRUE(session.overlay().empty());
  EXPECT_EQ(session.Answers(), baseline);

  // Zero wind radii: no footprint regardless of the center.
  advisory.number = 2;
  advisory.center = geo::GeoPoint(37.0, -95.0);
  advisory.tropical_wind_radius_miles = 0.0;
  advisory.hurricane_wind_radius_miles = 0.0;
  diff = session.Ingest(advisory);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value().empty());
  EXPECT_EQ(session.Answers(), baseline);
}

TEST(StreamingTest, SequencingRejectsDuplicateAndOutOfOrder) {
  const RiskGraph graph = StreamGraph(12, 9);
  const RouteEngine engine(graph, kParams);
  forecast::StreamingReroute session(engine);

  forecast::Advisory advisory;
  advisory.storm_name = "SEQ";
  advisory.number = 5;
  advisory.center = geo::GeoPoint(31.0, -40.0);
  ASSERT_TRUE(session.Ingest(advisory).ok());
  const auto baseline = session.Answers();

  auto duplicate = session.Ingest(advisory);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().kind, util::ParseErrorKind::kBadValue);
  EXPECT_NE(duplicate.error().message.find(
                "duplicate advisory number 5 (session already at 5)"),
            std::string::npos);

  advisory.number = 3;
  auto stale = session.Ingest(advisory);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.error().message.find(
                "out-of-order advisory number 3 (session already at 5)"),
            std::string::npos);

  // Rejects leave the session untouched: same answers, same position.
  EXPECT_EQ(session.last_advisory_number(), 5);
  EXPECT_EQ(session.advisory_count(), 1u);
  EXPECT_EQ(session.Answers(), baseline);

  advisory.number = 6;
  EXPECT_TRUE(session.Ingest(advisory).ok());
}

/// Expected endpoint diff between two answer snapshots, ascending pair.
std::vector<forecast::PairMove> SnapshotDiff(
    const std::vector<forecast::PairAnswer>& before,
    const std::vector<forecast::PairAnswer>& after) {
  std::vector<forecast::PairMove> moves;
  for (std::size_t p = 0; p < before.size(); ++p) {
    if (before[p].bit_risk_miles == after[p].bit_risk_miles &&
        before[p].digest == after[p].digest) {
      continue;
    }
    forecast::PairMove move;
    move.src = before[p].src;
    move.dst = before[p].dst;
    move.before_bit_risk_miles = before[p].bit_risk_miles;
    move.after_bit_risk_miles = after[p].bit_risk_miles;
    move.before_digest = before[p].digest;
    move.after_digest = after[p].digest;
    moves.push_back(move);
  }
  return moves;
}

TEST(StreamingCompose, ConsecutiveDiffsComposeToEndpointDiff) {
  const RiskGraph graph = StreamGraph(20, 33);
  const RouteEngine engine(graph, kParams);
  forecast::StreamingReroute session(engine);

  const auto advisories =
      forecast::GenerateAdvisories(forecast::IreneTrack());
  const auto start = session.Answers();
  std::vector<std::vector<forecast::PairAnswer>> snapshots{start};
  std::vector<forecast::RouteDiff> diffs;
  std::size_t recomputed = 0;
  for (std::size_t a = 0; a < 12; ++a) {
    auto diff = session.Ingest(advisories[a]);
    ASSERT_TRUE(diff.ok());
    recomputed += diff.value().pairs_recomputed;
    diffs.push_back(std::move(diff).value());
    snapshots.push_back(session.Answers());
  }

  // Pairwise: Compose(d_k, d_{k+1}) equals the snapshot-to-snapshot diff.
  for (std::size_t a = 0; a + 1 < diffs.size(); ++a) {
    const forecast::RouteDiff composed = Compose(diffs[a], diffs[a + 1]);
    EXPECT_EQ(composed.moves, SnapshotDiff(snapshots[a], snapshots[a + 2]))
        << "compose at advisory " << a;
    EXPECT_EQ(composed.advisory_number, diffs[a + 1].advisory_number);
    EXPECT_EQ(composed.source, "live");
  }

  // Folded over the whole prefix: start-to-latest endpoint diff, with
  // recompute counts accumulating.
  forecast::RouteDiff folded = diffs[0];
  for (std::size_t a = 1; a < diffs.size(); ++a) {
    folded = Compose(folded, diffs[a]);
  }
  EXPECT_EQ(folded.moves, SnapshotDiff(start, snapshots.back()));
  EXPECT_EQ(folded.pairs_recomputed, recomputed);
  EXPECT_EQ(folded.pairs_moved, folded.moves.size());

  // A fallback transition returns every answer to baseline, so folding
  // it in cancels the whole session: the empty diff.
  const forecast::RouteDiff fallback = session.FallbackToStatic();
  EXPECT_EQ(fallback.source, "static-fallback");
  EXPECT_EQ(fallback.advisory_number, 0);
  EXPECT_EQ(session.Answers(), start);
  const forecast::RouteDiff round_trip = Compose(folded, fallback);
  EXPECT_TRUE(round_trip.empty());
  EXPECT_EQ(round_trip.total_abs_delta, 0.0);

  // The sequence position survives the fallback: the live feed resumes.
  auto resumed = session.Ingest(advisories[12]);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.value().source, "live");
}

TEST(StreamingTest, CacheHitCountersAccountForSkippedPairs) {
  if (!obs::Enabled()) GTEST_SKIP() << "obs registry disabled";
  const RiskGraph graph = StreamGraph(18, 41);
  const RouteEngine engine(graph, kParams);
  forecast::StreamingReroute session(engine);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& hits = reg.GetCounter("stream.cache.hits");
  obs::Counter& recomputes = reg.GetCounter("stream.pairs.recomputed");

  // Replay the whole Irene library: every ingest must account for each
  // tracked pair as either a recompute or a cache hit, and at least one
  // landfalling advisory must exercise a real (partial) footprint.
  bool partial_footprint_seen = false;
  for (const forecast::Advisory& advisory :
       forecast::GenerateAdvisories(forecast::IreneTrack())) {
    const std::uint64_t hits_before = hits.Total();
    const std::uint64_t recomputes_before = recomputes.Total();
    const forecast::RouteDiff diff = session.Ingest(advisory).value();
    EXPECT_EQ(recomputes.Total() - recomputes_before, diff.pairs_recomputed);
    EXPECT_EQ(hits.Total() - hits_before,
              session.pair_count() - diff.pairs_recomputed);
    if (diff.pops_in_scope > 0 && diff.pairs_recomputed > 0 &&
        diff.pairs_recomputed < session.pair_count()) {
      partial_footprint_seen = true;
    }
  }
  EXPECT_TRUE(partial_footprint_seen)
      << "footprint skip never fired — the cache plane is dead";
}

// ---------------------------------------------------------------------------
// api::Service plumbing: one hoisted session per service, reused across
// StreamAdvisory requests; body identical to the library rendering.

TEST(StreamingService, SessionIsReusedAcrossRequestsAndResets) {
  if (!obs::Enabled()) GTEST_SKIP() << "obs registry disabled";
  const RiskGraph graph = StreamGraph(16, 55);
  const api::Service service(RouteEngine(graph, kParams));

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& sessions = reg.GetCounter("api.stream.sessions");
  obs::Counter& reuses = reg.GetCounter("api.stream.session_reuses");
  const std::uint64_t sessions_before = sessions.Total();
  const std::uint64_t reuses_before = reuses.Total();

  const auto texts =
      forecast::GenerateAdvisoryTexts(forecast::IreneTrack());
  api::StreamAdvisoryRequest request;
  request.bulletin = texts[0];
  const api::RouteDiffResponse first = service.StreamAdvisory(request);
  EXPECT_EQ(first.diff.source, "live");
  EXPECT_EQ(first.diff.advisory_number, 1);
  EXPECT_EQ(sessions.Total() - sessions_before, 1u);

  request.bulletin = texts[1];
  const api::RouteDiffResponse second = service.StreamAdvisory(request);
  EXPECT_EQ(second.diff.advisory_number, 2);
  EXPECT_EQ(sessions.Total() - sessions_before, 1u)
      << "second request must reuse the hoisted session, not rebuild it";
  EXPECT_EQ(reuses.Total() - reuses_before, 1u);

  // Replaying a served bulletin violates the sequence guard.
  EXPECT_THROW((void)service.StreamAdvisory(request), InvalidArgument);

  // reset=true discards the session; the sequence starts over.
  request.bulletin = texts[0];
  request.reset = true;
  const api::RouteDiffResponse fresh = service.StreamAdvisory(request);
  EXPECT_EQ(fresh.diff.advisory_number, 1);
  EXPECT_EQ(sessions.Total() - sessions_before, 2u);
  EXPECT_EQ(fresh.body, first.body);
}

TEST(StreamingService, BodyMatchesLibraryRendering) {
  const RiskGraph graph = StreamGraph(16, 55);
  const api::Service service(RouteEngine(graph, kParams));
  const RouteEngine reference_engine(graph, kParams);
  forecast::StreamingReroute reference(reference_engine);

  const auto texts =
      forecast::GenerateAdvisoryTexts(forecast::SandyTrack());
  api::StreamAdvisoryRequest request;
  request.top = 2;
  for (std::size_t a = 0; a < 6; ++a) {
    request.bulletin = texts[a];
    const api::RouteDiffResponse served = service.StreamAdvisory(request);
    auto expected = reference.IngestText(texts[a]);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(served.body, RenderRouteDiff(expected.value(),
                                           reference_engine, request.top))
        << "advisory " << a;
  }
}

TEST(StreamingService, UnparsableBulletinFallsBackToStatic) {
  const RiskGraph graph = StreamGraph(12, 63);
  const api::Service service(RouteEngine(graph, kParams));
  const auto texts =
      forecast::GenerateAdvisoryTexts(forecast::IreneTrack());
  api::StreamAdvisoryRequest request;
  request.bulletin = texts[0];
  ASSERT_EQ(service.StreamAdvisory(request).diff.source, "live");

  request.bulletin = "NOT AN ADVISORY AT ALL";
  const api::RouteDiffResponse fallback = service.StreamAdvisory(request);
  EXPECT_EQ(fallback.diff.source, "static-fallback");
  EXPECT_EQ(fallback.body.rfind("advisory rejected: ", 0), 0u);

  // The live feed resumes on the same session after the fallback.
  request.bulletin = texts[1];
  EXPECT_EQ(service.StreamAdvisory(request).diff.source, "live");
}

// ---------------------------------------------------------------------------
// Wire + handler: the StreamAdvisory frame kind round-trips canonically
// and a served frame's body equals the direct api::Service call.

TEST(StreamingWire, FrameRoundTripsAndServesIdenticalBody) {
  const RiskGraph graph = StreamGraph(14, 71);
  const api::Service service(RouteEngine(graph, kParams));
  const auto texts =
      forecast::GenerateAdvisoryTexts(forecast::IreneTrack());

  server::wire::Request request;
  request.kind = server::wire::FrameKind::kStreamAdvisory;
  request.id = 42;
  request.deadline_ms = 1500;
  request.stream.bulletin = texts[0];
  request.stream.reset = true;  // fresh session per serve: deterministic
  request.stream.top = 2;

  const std::string encoded = server::wire::EncodeRequest(request);
  const server::wire::WireLimits limits;
  auto frame = server::wire::DecodeSingleFrame(
      {reinterpret_cast<const std::uint8_t*>(encoded.data()),
       encoded.size()},
      limits);
  ASSERT_TRUE(frame.ok()) << frame.error().Render();
  auto decoded = server::wire::DecodeRequestPayload(
      frame.value().header,
      {reinterpret_cast<const std::uint8_t*>(frame.value().payload.data()),
       frame.value().payload.size()},
      limits);
  ASSERT_TRUE(decoded.ok()) << decoded.error().Render();
  EXPECT_EQ(decoded.value().stream.bulletin, request.stream.bulletin);
  EXPECT_EQ(decoded.value().stream.reset, true);
  EXPECT_EQ(decoded.value().stream.top, 2u);
  EXPECT_EQ(decoded.value().deadline_ms, 1500u);
  // Canonical: a decoded frame re-encodes to the exact input bytes.
  EXPECT_EQ(server::wire::EncodeRequest(decoded.value()), encoded);

  const auto [status, body] = server::HandleRequest(service, decoded.value());
  EXPECT_EQ(status, server::wire::Status::kOk);
  EXPECT_EQ(body, service.StreamAdvisory(request.stream).body);

  // A sequence violation surfaces as kBadRequest, not a dead connection:
  // advisory #2 extends the live session, replaying it does not.
  server::wire::Request replay = request;
  replay.stream.reset = false;
  replay.stream.bulletin = texts[1];
  ASSERT_EQ(server::HandleRequest(service, replay).first,
            server::wire::Status::kOk);
  EXPECT_EQ(server::HandleRequest(service, replay).first,
            server::wire::Status::kBadRequest);
}

}  // namespace
}  // namespace riskroute
