// Unit tests for the geo module: coordinates, great-circle math, bounding
// boxes and the CONUS polygon.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/bounding_box.h"
#include "geo/conus.h"
#include "geo/distance.h"
#include "geo/geo_point.h"
#include "util/error.h"
#include "util/rng.h"

namespace riskroute::geo {
namespace {

TEST(GeoPoint, ValidatesRange) {
  EXPECT_NO_THROW(GeoPoint(0, 0));
  EXPECT_NO_THROW(GeoPoint(90, 180));
  EXPECT_NO_THROW(GeoPoint(-90, -180));
  EXPECT_THROW(GeoPoint(90.1, 0), InvalidArgument);
  EXPECT_THROW(GeoPoint(0, -180.1), InvalidArgument);
  EXPECT_THROW(GeoPoint(std::nan(""), 0), InvalidArgument);
}

TEST(GeoPoint, ToStringUsesHemisphereSuffixes) {
  EXPECT_EQ(GeoPoint(35.2, -76.4).ToString(), "35.2000N 76.4000W");
  EXPECT_EQ(GeoPoint(-12.5, 130.8).ToString(), "12.5000S 130.8000E");
}

TEST(Distance, KnownCityPairs) {
  // Reference distances (statute miles, great-circle).
  const GeoPoint nyc(40.71, -74.01);
  const GeoPoint la(34.05, -118.24);
  const GeoPoint chicago(41.88, -87.63);
  EXPECT_NEAR(GreatCircleMiles(nyc, la), 2445, 25);
  EXPECT_NEAR(GreatCircleMiles(nyc, chicago), 712, 15);
}

TEST(Distance, ZeroAndSymmetry) {
  const GeoPoint a(32.3, -90.2), b(47.6, -122.3);
  EXPECT_DOUBLE_EQ(GreatCircleMiles(a, a), 0.0);
  EXPECT_DOUBLE_EQ(GreatCircleMiles(a, b), GreatCircleMiles(b, a));
}

TEST(Distance, ApproxCloseToHaversineAtConusScale) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint a(rng.Uniform(25, 49), rng.Uniform(-124, -67));
    const GeoPoint b(a.latitude() + rng.Uniform(-3, 3),
                     a.longitude() + rng.Uniform(-3, 3));
    const double exact = GreatCircleMiles(a, b);
    const double approx = ApproxMiles(a, b);
    EXPECT_NEAR(approx, exact, std::max(0.5, exact * 0.01));
  }
}

TEST(Distance, TriangleInequality) {
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint a(rng.Uniform(25, 49), rng.Uniform(-124, -67));
    const GeoPoint b(rng.Uniform(25, 49), rng.Uniform(-124, -67));
    const GeoPoint c(rng.Uniform(25, 49), rng.Uniform(-124, -67));
    EXPECT_LE(GreatCircleMiles(a, c),
              GreatCircleMiles(a, b) + GreatCircleMiles(b, c) + 1e-6);
  }
}

TEST(Distance, BearingCardinalDirections) {
  const GeoPoint origin(40.0, -100.0);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint(45.0, -100.0)), 0.0, 0.5);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint(35.0, -100.0)), 180.0, 0.5);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint(40.0, -95.0)), 90.0, 2.5);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint(40.0, -105.0)), 270.0, 2.5);
}

TEST(Distance, DestinationInvertsDistanceAndBearing) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint origin(rng.Uniform(25, 49), rng.Uniform(-124, -67));
    const double bearing = rng.Uniform(0, 360);
    const double miles = rng.Uniform(1, 1500);
    const GeoPoint dest = Destination(origin, bearing, miles);
    EXPECT_NEAR(GreatCircleMiles(origin, dest), miles, miles * 1e-6 + 1e-6);
    EXPECT_NEAR(InitialBearingDeg(origin, dest), bearing, 0.01);
  }
}

TEST(Distance, InterpolateEndpointsAndMidpoint) {
  const GeoPoint a(30.0, -90.0), b(40.0, -75.0);
  EXPECT_EQ(Interpolate(a, b, 0.0), a);
  EXPECT_EQ(Interpolate(a, b, 1.0), b);
  const GeoPoint mid = Interpolate(a, b, 0.5);
  EXPECT_NEAR(GreatCircleMiles(a, mid), GreatCircleMiles(mid, b), 0.5);
}

TEST(BoundingBox, ValidatesOrder) {
  EXPECT_NO_THROW(BoundingBox(24, -125, 49, -66));
  EXPECT_THROW(BoundingBox(49, -125, 24, -66), InvalidArgument);
  EXPECT_THROW(BoundingBox(24, -66, 49, -125), InvalidArgument);
}

TEST(BoundingBox, ContainsAndPadding) {
  const BoundingBox box(30, -100, 40, -90);
  EXPECT_TRUE(box.Contains(GeoPoint(35, -95)));
  EXPECT_TRUE(box.Contains(GeoPoint(30, -100)));  // boundary inclusive
  EXPECT_FALSE(box.Contains(GeoPoint(29.9, -95)));
  EXPECT_TRUE(box.Padded(0.5).Contains(GeoPoint(29.9, -95)));
}

TEST(BoundingBox, AroundPoints) {
  const std::vector<GeoPoint> points = {{30, -95}, {35, -100}, {32, -90}};
  const BoundingBox box = BoundingBox::Around(points);
  EXPECT_DOUBLE_EQ(box.min_lat(), 30);
  EXPECT_DOUBLE_EQ(box.max_lat(), 35);
  EXPECT_DOUBLE_EQ(box.min_lon(), -100);
  EXPECT_DOUBLE_EQ(box.max_lon(), -90);
  for (const auto& p : points) EXPECT_TRUE(box.Contains(p));
}

TEST(BoundingBox, AroundEmptyThrows) {
  const std::vector<GeoPoint> none;
  EXPECT_THROW((void)BoundingBox::Around(none), InvalidArgument);
}

TEST(BoundingBox, ExpandedToInclude) {
  const BoundingBox box(30, -100, 40, -90);
  const BoundingBox bigger = box.ExpandedToInclude(GeoPoint(45, -80));
  EXPECT_TRUE(bigger.Contains(GeoPoint(45, -80)));
  EXPECT_TRUE(bigger.Contains(GeoPoint(30, -100)));
}

struct ConusCase {
  const char* name;
  double lat, lon;
  bool inside;
};

class ConusParamTest : public ::testing::TestWithParam<ConusCase> {};

TEST_P(ConusParamTest, ClassifiesKnownLocations) {
  const ConusCase& c = GetParam();
  EXPECT_EQ(InConus(GeoPoint(c.lat, c.lon)), c.inside) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    KnownLocations, ConusParamTest,
    ::testing::Values(
        ConusCase{"Kansas", 38.5, -98.0, true},
        ConusCase{"New Orleans", 29.95, -90.07, true},
        ConusCase{"Miami", 25.76, -80.19, true},
        ConusCase{"Seattle", 47.61, -122.33, true},
        ConusCase{"Key West", 24.56, -81.78, true},
        ConusCase{"Houston", 29.76, -95.37, true},
        ConusCase{"Maine inland", 45.2, -69.3, true},
        ConusCase{"Gulf of Mexico", 27.0, -90.0, false},
        ConusCase{"Atlantic off NC", 34.0, -73.0, false},
        ConusCase{"Pacific off CA", 35.0, -125.5, false},
        ConusCase{"Canada (Winnipeg)", 49.9, -97.1, false},
        ConusCase{"Mexico (Monterrey)", 25.7, -100.3, false},
        ConusCase{"Lake Superior", 47.7, -88.0, false}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(Conus, PolygonIsClosedAndLarge) {
  const auto polygon = ConusPolygon();
  ASSERT_GE(polygon.size(), 30u);
  EXPECT_EQ(polygon.front(), polygon.back());
}

}  // namespace
}  // namespace riskroute::geo
