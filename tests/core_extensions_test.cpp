// Tests for the core extensions: Yen's k-shortest paths, the
// multi-objective (latency vs risk) router, IP-FRR / MPLS backup paths and
// the OSPF composite-weight export.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/backup_paths.h"
#include "core/k_shortest.h"
#include "core/multi_objective.h"
#include "core/ospf_export.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "util/error.h"

namespace riskroute::core {
namespace {

/// Diamond with a tail:   0 - 1 - 3 - 4   and   0 - 2 - 3.
/// Node 2's corridor is longer but far less risky than node 1's.
RiskGraph Diamond() {
  RiskGraph graph;
  graph.AddNode(RiskNode{"S", geo::GeoPoint(35.0, -100.0), 0.25, 0.00, 0.0});
  graph.AddNode(RiskNode{"risky", geo::GeoPoint(35.5, -97.0), 0.25, 0.20, 0.0});
  graph.AddNode(RiskNode{"safe", geo::GeoPoint(38.5, -97.0), 0.25, 0.001, 0.0});
  graph.AddNode(RiskNode{"M", geo::GeoPoint(35.0, -94.0), 0.15, 0.01, 0.0});
  graph.AddNode(RiskNode{"T", geo::GeoPoint(35.0, -91.0), 0.10, 0.00, 0.0});
  graph.AddEdgeByDistance(0, 1);
  graph.AddEdgeByDistance(1, 3);
  graph.AddEdgeByDistance(0, 2);
  graph.AddEdgeByDistance(2, 3);
  graph.AddEdgeByDistance(3, 4);
  return graph;
}

// ---------- k shortest paths ----------

TEST(KShortest, EnumeratesBothDiamondArms) {
  const RiskGraph graph = Diamond();
  const auto paths =
      KShortestPaths(graph, 0, 3, 4, EdgeWeightFn(DistanceWeight));
  ASSERT_EQ(paths.size(), 2u);  // only two loopless 0->3 paths exist
  EXPECT_EQ(paths[0].path, (Path{0, 1, 3}));  // southern arm is shorter
  EXPECT_EQ(paths[1].path, (Path{0, 2, 3}));
  EXPECT_LT(paths[0].weight, paths[1].weight);
}

TEST(KShortest, WeightsAscending) {
  const RiskGraph graph = Diamond();
  const auto paths =
      KShortestPaths(graph, 0, 4, 10, EdgeWeightFn(DistanceWeight));
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].weight, paths[i - 1].weight - 1e-9);
  }
}

TEST(KShortest, PathsAreLooplessAndUnique) {
  const RiskGraph graph = Diamond();
  const auto paths =
      KShortestPaths(graph, 0, 4, 10, EdgeWeightFn(DistanceWeight));
  std::set<Path> seen;
  for (const WeightedPath& wp : paths) {
    EXPECT_TRUE(seen.insert(wp.path).second) << "duplicate path";
    std::set<std::size_t> nodes(wp.path.begin(), wp.path.end());
    EXPECT_EQ(nodes.size(), wp.path.size()) << "loop in path";
    EXPECT_EQ(wp.path.front(), 0u);
    EXPECT_EQ(wp.path.back(), 4u);
  }
}

TEST(KShortest, FirstPathMatchesDijkstra) {
  const RiskGraph graph = Diamond();
  const auto paths =
      KShortestPaths(graph, 0, 4, 1, EdgeWeightFn(DistanceWeight));
  const auto direct = RouteEngine(graph, RiskParams{0, 0}).FindPath(0, 4, 0.0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path, *direct);
}

TEST(KShortest, SourceEqualsTargetAndValidation) {
  const RiskGraph graph = Diamond();
  const auto trivial =
      KShortestPaths(graph, 2, 2, 3, EdgeWeightFn(DistanceWeight));
  ASSERT_EQ(trivial.size(), 1u);
  EXPECT_EQ(trivial[0].path, Path{2});
  EXPECT_THROW(
      (void)KShortestPaths(graph, 0, 4, 0, EdgeWeightFn(DistanceWeight)),
      InvalidArgument);
  EXPECT_THROW(
      (void)KShortestPaths(graph, 0, 99, 2, EdgeWeightFn(DistanceWeight)),
      InvalidArgument);
}

TEST(KShortest, DisconnectedReturnsEmpty) {
  RiskGraph graph;
  graph.AddNode(RiskNode{"A", geo::GeoPoint(30, -90), 0.5, 0, 0});
  graph.AddNode(RiskNode{"B", geo::GeoPoint(40, -100), 0.5, 0, 0});
  EXPECT_TRUE(
      KShortestPaths(graph, 0, 1, 3, EdgeWeightFn(DistanceWeight)).empty());
}

// ---------- multi-objective ----------

TEST(MultiObjective, ParetoFrontEndpointsAreExtremes) {
  const RiskGraph graph = Diamond();
  const MultiObjectiveRouter router(graph, RiskParams{1e5, 0});
  const auto front = router.ParetoFront(0, 4);
  ASSERT_GE(front.size(), 2u);
  // Front is ascending latency, descending risk; every successive entry
  // trades latency for risk.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].latency_ms, front[i - 1].latency_ms);
    EXPECT_LT(front[i].bit_risk_miles, front[i - 1].bit_risk_miles);
  }
  // Fastest front entry == geographic shortest path.
  const RiskRouter plain(graph, RiskParams{1e5, 0});
  EXPECT_EQ(front.front().path, plain.ShortestRoute(0, 4)->path);
}

TEST(MultiObjective, LatencyBudgetBinds) {
  const RiskGraph graph = Diamond();
  const MultiObjectiveRouter router(graph, RiskParams{1e5, 0});
  const auto front = router.ParetoFront(0, 4);
  ASSERT_GE(front.size(), 2u);
  // A budget below the safe detour's latency forces the fast risky path.
  const auto tight =
      router.MinRiskWithinLatency(0, 4, front.front().latency_ms + 1e-9);
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->path, front.front().path);
  // A generous budget buys the min-risk path.
  const auto loose = router.MinRiskWithinLatency(0, 4, 1e9);
  ASSERT_TRUE(loose.has_value());
  EXPECT_DOUBLE_EQ(loose->bit_risk_miles, front.back().bit_risk_miles);
  // An impossible budget yields nothing.
  EXPECT_FALSE(router.MinRiskWithinLatency(0, 4, 1e-6).has_value());
}

TEST(MultiObjective, ScalarizationSweepsTheFront) {
  const RiskGraph graph = Diamond();
  const MultiObjectiveRouter router(graph, RiskParams{1e5, 0});
  const auto latency_pick = router.Scalarized(0, 4, 0.0);
  const auto risk_pick = router.Scalarized(0, 4, 1.0);
  ASSERT_TRUE(latency_pick && risk_pick);
  EXPECT_LE(latency_pick->latency_ms, risk_pick->latency_ms);
  EXPECT_GE(latency_pick->bit_risk_miles, risk_pick->bit_risk_miles);
  EXPECT_THROW((void)router.Scalarized(0, 4, 1.5), InvalidArgument);
}

TEST(MultiObjective, LatencyModelIsLinearInMiles) {
  EXPECT_DOUBLE_EQ(MilesToLatencyMs(0), 0.0);
  EXPECT_NEAR(MilesToLatencyMs(1000), 8.2, 0.01);
}

// ---------- backup paths ----------

TEST(BackupPaths, RoutingTableNextHopsConsistent) {
  const RiskGraph graph = Diamond();
  const RoutingTable table =
      BuildRoutingTable(graph, EdgeWeightFn(DistanceWeight));
  for (std::size_t s = 0; s < graph.node_count(); ++s) {
    EXPECT_EQ(table.next_hop[s][s], s);
    for (std::size_t d = 0; d < graph.node_count(); ++d) {
      if (d == s) continue;
      const std::size_t hop = table.next_hop[s][d];
      ASSERT_NE(hop, RoutingTable::kUnreachable);
      EXPECT_TRUE(graph.HasEdge(s, hop));
      // Bellman consistency: dist(s,d) = w(s,hop) + dist(hop,d).
      double w = 0.0;
      for (const RiskEdge& e : graph.OutEdges(s)) {
        if (e.to == hop) w = e.miles;
      }
      EXPECT_NEAR(table.dist[s][d], w + table.dist[hop][d], 1e-6);
    }
  }
}

TEST(BackupPaths, LfaSatisfiesLoopFreeCondition) {
  const RiskGraph graph = Diamond();
  const RoutingTable table =
      BuildRoutingTable(graph, EdgeWeightFn(DistanceWeight));
  const auto lfas = ComputeLfas(graph, table);
  for (std::size_t s = 0; s < graph.node_count(); ++s) {
    for (std::size_t d = 0; d < graph.node_count(); ++d) {
      if (d == s) continue;
      for (const std::size_t n : lfas[s][d].alternates) {
        EXPECT_NE(n, lfas[s][d].primary_next_hop);
        EXPECT_LT(table.dist[n][d], table.dist[n][s] + table.dist[s][d]);
      }
    }
  }
}

TEST(BackupPaths, DiamondSourceHasAlternateForMergePoint) {
  // From S, destination M: primary goes via one arm, the other arm's head
  // is a valid LFA.
  const RiskGraph graph = Diamond();
  const RoutingTable table =
      BuildRoutingTable(graph, EdgeWeightFn(DistanceWeight));
  const auto lfas = ComputeLfas(graph, table);
  EXPECT_FALSE(lfas[0][3].alternates.empty());
  EXPECT_GT(LfaCoverage(lfas), 0.0);
  EXPECT_LE(LfaCoverage(lfas), 1.0);
}

TEST(BackupPaths, LinkBypassAvoidsTheLink) {
  const RiskGraph graph = Diamond();
  const auto bypass = LinkBypass(graph, 0, 1, EdgeWeightFn(DistanceWeight));
  ASSERT_TRUE(bypass.has_value());
  // Must reach 1 without using edge (0,1) directly.
  EXPECT_EQ(bypass->front(), 0u);
  EXPECT_EQ(bypass->back(), 1u);
  ASSERT_GE(bypass->size(), 3u);
  EXPECT_NE((*bypass)[1], 1u);
  EXPECT_THROW((void)LinkBypass(graph, 0, 4, EdgeWeightFn(DistanceWeight)),
               InvalidArgument);  // link does not exist
}

TEST(BackupPaths, LinkBypassNulloptWhenCut) {
  // A bridge link has no bypass.
  RiskGraph graph;
  graph.AddNode(RiskNode{"A", geo::GeoPoint(30, -95), 0.5, 0, 0});
  graph.AddNode(RiskNode{"B", geo::GeoPoint(31, -94), 0.5, 0, 0});
  graph.AddEdgeByDistance(0, 1);
  EXPECT_FALSE(LinkBypass(graph, 0, 1, EdgeWeightFn(DistanceWeight)).has_value());
}

TEST(BackupPaths, NodeBypassAvoidsProtectedNode) {
  const RiskGraph graph = Diamond();
  const auto bypass =
      NodeBypass(graph, 0, 3, /*protect=*/1, EdgeWeightFn(DistanceWeight));
  ASSERT_TRUE(bypass.has_value());
  for (const std::size_t v : *bypass) EXPECT_NE(v, 1u);
  EXPECT_THROW(
      (void)NodeBypass(graph, 0, 3, 0, EdgeWeightFn(DistanceWeight)),
      InvalidArgument);
}

TEST(BackupPaths, NodeBypassNulloptWhenArticulation) {
  // Node 3 is the only way to 4; protecting it cuts T off.
  const RiskGraph graph = Diamond();
  EXPECT_FALSE(
      NodeBypass(graph, 0, 4, 3, EdgeWeightFn(DistanceWeight)).has_value());
}

// ---------- ospf export ----------

TEST(OspfExport, CostsCoverEveryLinkOnce) {
  const RiskGraph graph = Diamond();
  const auto costs = ComputeOspfCosts(graph);
  EXPECT_EQ(costs.size(), 5u);  // five undirected links
  for (const OspfLinkCost& c : costs) {
    EXPECT_LT(c.a, c.b);
    EXPECT_TRUE(graph.HasEdge(c.a, c.b));
    EXPECT_GE(c.cost, 1u);
    EXPECT_LE(c.cost, 65535u);
  }
}

TEST(OspfExport, RiskRaisesCost) {
  const RiskGraph graph = Diamond();
  OspfExportOptions options;
  options.params = RiskParams{1e5, 0};
  const auto costs = ComputeOspfCosts(graph, options);
  // The two diamond arms have similar mileage; the risky arm's links must
  // cost more than the safe arm's.
  double risky_cost = 0, safe_cost = 0;
  for (const OspfLinkCost& c : costs) {
    if ((c.a == 0 && c.b == 1) || (c.a == 1 && c.b == 3)) {
      risky_cost += c.cost;
    }
    if ((c.a == 0 && c.b == 2) || (c.a == 2 && c.b == 3)) {
      safe_cost += c.cost;
    }
  }
  EXPECT_GT(risky_cost, safe_cost);
}

TEST(OspfExport, MaxWeightMapsToMaxCost) {
  const RiskGraph graph = Diamond();
  const auto costs = ComputeOspfCosts(graph);
  std::uint16_t max_cost = 0;
  for (const OspfLinkCost& c : costs) max_cost = std::max(max_cost, c.cost);
  EXPECT_EQ(max_cost, 65535u);
}

TEST(OspfExport, ConfigRendersEveryLink) {
  const RiskGraph graph = Diamond();
  const auto costs = ComputeOspfCosts(graph);
  const std::string config = RenderOspfConfig(graph, costs);
  EXPECT_NE(config.find("\"S\""), std::string::npos);
  EXPECT_NE(config.find("cost "), std::string::npos);
  std::size_t lines = 0;
  for (const char ch : config) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, costs.size() + 1);  // header + one line per link
}

TEST(OspfExport, CompositeWeightShiftsShortestPaths) {
  // Under pure distance, S->M goes through the risky arm; under the
  // composite weight with large lambda it must switch to the safe arm.
  const RiskGraph graph = Diamond();
  OspfExportOptions options;
  options.params = RiskParams{1e6, 0};
  options.alpha = 0.5;
  const auto composite = CompositeWeight(graph, options);
  const auto risk_path = ShortestPathWith(graph, 0, 3, composite);
  ASSERT_TRUE(risk_path.has_value());
  EXPECT_EQ(*risk_path, (Path{0, 2, 3}));
  // Plain distance is a frozen-plane weight; the engine owns that query.
  const RouteEngine engine(graph, options.params);
  const auto plain = engine.FindPath(0, 3, /*alpha=*/0.0);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, (Path{0, 1, 3}));
}

}  // namespace
}  // namespace riskroute::core
