// Tests for the BGP-lite substrate: relationship classification,
// Gao-Rexford route selection/export, valley-freeness, add-paths
// retention and disaster failover assessment.
#include <gtest/gtest.h>

#include "bgp/path_vector.h"
#include "bgp/relationships.h"
#include "bgp/restoration.h"
#include "topology/generator.h"
#include "util/error.h"

namespace riskroute::bgp {
namespace {

using topology::Network;
using topology::NetworkKind;

/// Small corpus:
///   T0 -- T1 (tier-1 peering mesh)
///   R2 -> T0 (customer), R3 -> T1 (customer), R4 -> T0 and T1 (multihomed)
///   R2 -- R3 (regional peering)
topology::Corpus SmallCorpus() {
  topology::Corpus corpus;
  const auto add = [&](const char* name, NetworkKind kind) {
    Network net(name, kind);
    net.AddPop({"X, TX", geo::GeoPoint(30, -95)});
    return corpus.AddNetwork(std::move(net));
  };
  add("T0", NetworkKind::kTier1);
  add("T1", NetworkKind::kTier1);
  add("R2", NetworkKind::kRegional);
  add("R3", NetworkKind::kRegional);
  add("R4", NetworkKind::kRegional);
  corpus.AddPeering(0, 1);
  corpus.AddPeering(0, 2);
  corpus.AddPeering(1, 3);
  corpus.AddPeering(2, 3);
  corpus.AddPeering(0, 4);
  corpus.AddPeering(1, 4);
  return corpus;
}

TEST(Relationships, ClassifiesByTier) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  EXPECT_EQ(graph.RoleOf(0, 1), NeighborRole::kPeer);     // tier1-tier1
  EXPECT_EQ(graph.RoleOf(0, 2), NeighborRole::kCustomer); // T0's customer R2
  EXPECT_EQ(graph.RoleOf(2, 0), NeighborRole::kProvider); // R2's provider T0
  EXPECT_EQ(graph.RoleOf(2, 3), NeighborRole::kPeer);     // regional peering
  EXPECT_TRUE(graph.AreAdjacent(0, 4));
  EXPECT_FALSE(graph.AreAdjacent(3, 4));
  EXPECT_THROW((void)graph.RoleOf(3, 4), InvalidArgument);
}

TEST(PathVector, PreferenceOrder) {
  const Route customer{{0, 9}, NeighborRole::kCustomer};
  const Route peer{{0, 9}, NeighborRole::kPeer};
  const Route provider{{0, 9}, NeighborRole::kProvider};
  EXPECT_TRUE(RoutePreferred(customer, peer));
  EXPECT_TRUE(RoutePreferred(peer, provider));
  const Route short_peer{{0, 9}, NeighborRole::kPeer};
  const Route long_customer{{0, 5, 6, 9}, NeighborRole::kCustomer};
  EXPECT_TRUE(RoutePreferred(long_customer, short_peer));  // class dominates
  const Route long_peer{{0, 5, 9}, NeighborRole::kPeer};
  EXPECT_TRUE(RoutePreferred(short_peer, long_peer));  // then length
}

TEST(PathVector, EveryoneReachesEveryDestination) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  for (std::size_t dst = 0; dst < graph.as_count(); ++dst) {
    const RoutingState state = RoutingState::Compute(graph, dst);
    EXPECT_DOUBLE_EQ(state.Reachability(), 1.0) << "destination " << dst;
  }
}

TEST(PathVector, PrefersCustomerRoutes) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  // T0 -> R3: T0 could go via peer T1 (customer route of T1) or via
  // customer R2 (peer route of R2 -- not exported to a provider!). The
  // only policy-compliant route is via T1.
  const RoutingState state = RoutingState::Compute(graph, 3);
  const RibEntry& rib = state.rib(0);
  ASSERT_TRUE(rib.best.has_value());
  EXPECT_EQ(rib.best->as_path, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(PathVector, ExportRulesBlockValleyPaths) {
  // R2 learns a peer route to R3 directly. R2 must NOT export it to its
  // provider T0 (no-valley rule), so T0's route to R3 goes through T1.
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  const RoutingState state = RoutingState::Compute(graph, 3);
  for (std::size_t as = 0; as < graph.as_count(); ++as) {
    if (as == 3) continue;
    const RibEntry& rib = state.rib(as);
    ASSERT_TRUE(rib.best.has_value()) << "AS " << as;
    EXPECT_TRUE(IsValleyFree(graph, rib.best->as_path)) << "AS " << as;
    for (const Route& alt : rib.alternates) {
      EXPECT_TRUE(IsValleyFree(graph, alt.as_path));
    }
  }
}

TEST(PathVector, MultihomedAsHasAddPathsBackup) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  // R4 is multihomed to T0 and T1: toward R3 it must hold two distinct
  // next-hop routes (via T1 direct customer chain, via T0->T1).
  const RoutingState state = RoutingState::Compute(graph, 3);
  const RibEntry& rib = state.rib(4);
  ASSERT_GE(rib.alternates.size(), 2u);
  EXPECT_NE(rib.alternates[0].next_hop(), rib.alternates[1].next_hop());
}

TEST(PathVector, SingleHomedAsHasNoBackup) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  // R2's only transit is T0 (its peer R3 cannot reach R4's providers...
  // Actually toward R4, R2 has only the T0 next hop).
  const RoutingState state = RoutingState::Compute(graph, 4);
  const RibEntry& rib = state.rib(2);
  ASSERT_TRUE(rib.best.has_value());
  EXPECT_EQ(rib.alternates.size(), 1u);
}

TEST(PathVector, ValleyFreeChecker) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  EXPECT_TRUE(IsValleyFree(graph, {2, 0, 1, 3}));   // up, across, down
  EXPECT_FALSE(IsValleyFree(graph, {0, 2, 3, 1}));  // down, across, up
  EXPECT_TRUE(IsValleyFree(graph, {2, 3}));         // single peer step
  EXPECT_TRUE(IsValleyFree(graph, {0}));            // trivial
}

TEST(PathVector, PaperCorpusFullyRoutedAndValleyFree) {
  const topology::Corpus corpus = topology::GeneratePaperCorpus(123);
  const auto graph = RelationshipGraph::FromCorpus(corpus);
  for (const std::size_t dst : {0ul, 5ul, 12ul, 22ul}) {
    const RoutingState state = RoutingState::Compute(graph, dst);
    EXPECT_DOUBLE_EQ(state.Reachability(), 1.0);
    for (std::size_t as = 0; as < graph.as_count(); ++as) {
      if (as == dst) continue;
      ASSERT_TRUE(state.rib(as).best.has_value());
      EXPECT_TRUE(IsValleyFree(graph, state.rib(as).best->as_path));
    }
  }
}

TEST(Restoration, NoFailuresMeansAllPrimary) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  const std::vector<bool> none(graph.as_count(), false);
  const RestorationSummary summary = AssessFailover(graph, none);
  EXPECT_EQ(summary.pairs, summary.primary_ok);
  EXPECT_DOUBLE_EQ(summary.PrimarySurvival(), 1.0);
  EXPECT_DOUBLE_EQ(summary.FinalReachability(), 1.0);
}

TEST(Restoration, SingleHomedCustomersBehindDeadTier1AreLost) {
  // Strict Gao-Rexford export means R3 (single-homed to T1) becomes
  // unreachable when T1 dies: its peer R2 may not re-export provider or
  // peer routes. Losing T1 really does strand its sole customers.
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  std::vector<bool> failed(graph.as_count(), false);
  failed[1] = true;  // T1 down
  const RestorationSummary summary = AssessFailover(graph, failed);
  EXPECT_LT(summary.PrimarySurvival(), 1.0);
  EXPECT_GT(summary.lost, 0u);
}

TEST(Restoration, MultihomedDestinationRescuedByAddPaths) {
  // Same corpus but R3 buys transit from BOTH tier-1s. Primaries prefer
  // the lower-indexed tier-1 (T0), so killing T0 hits them — and the
  // multihomed ASes' pre-installed T1 alternates take over, while the
  // single-homed R2 strands for everything beyond its direct peer.
  topology::Corpus corpus = SmallCorpus();
  corpus.AddPeering(0, 3);  // R3 -> T0 as well
  const auto graph = RelationshipGraph::FromCorpus(corpus);
  std::vector<bool> failed(graph.as_count(), false);
  failed[0] = true;  // T0 down
  const RestorationSummary summary = AssessFailover(graph, failed);
  EXPECT_LT(summary.PrimarySurvival(), 1.0);
  EXPECT_GT(summary.add_paths, 0u);  // e.g. R4 -> R3 flips to the T1 path
  EXPECT_GT(summary.lost, 0u);       // R2 beyond its direct peer
  EXPECT_GT(summary.FinalReachability(), summary.PrimarySurvival());
}

TEST(Restoration, LossWhenSoleProviderFails) {
  const auto graph = RelationshipGraph::FromCorpus(SmallCorpus());
  std::vector<bool> failed(graph.as_count(), false);
  failed[0] = true;  // T0 down: R2 loses its only provider
  const RestorationSummary summary = AssessFailover(graph, failed);
  // R2 can still reach R3 (direct peering) but nothing else -> losses.
  EXPECT_GT(summary.lost, 0u);
  EXPECT_LT(summary.FinalReachability(), 1.0);
}

TEST(Restoration, StormDerivedFailures) {
  const topology::Corpus corpus = SmallCorpus();
  // Build a scope whose hurricane zone covers the single shared city.
  forecast::Advisory advisory;
  advisory.storm_name = "X";
  advisory.center = geo::GeoPoint(30, -95);
  advisory.max_wind_mph = 100;
  advisory.hurricane_wind_radius_miles = 50;
  advisory.tropical_wind_radius_miles = 150;
  const forecast::StormScope scope({advisory});
  const std::vector<bool> failed = FailedAsesFromStorm(corpus, scope, 0.5);
  // Every network's single PoP is inside the hurricane zone.
  for (const bool f : failed) EXPECT_TRUE(f);
  EXPECT_THROW((void)AssessFailover(RelationshipGraph::FromCorpus(corpus),
                                    std::vector<bool>(2, false)),
               InvalidArgument);
}

}  // namespace
}  // namespace riskroute::bgp
