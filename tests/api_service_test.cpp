// riskroute::api::Service tests: the typed request/response layer the
// CLI subcommands and riskroute_serverd handlers share. The load-bearing
// contract is byte-identity — a Service body is a pure function of
// (engine, request), no matter whether the engine was frozen live or
// booted from a snapshot, and no matter the worker-pool size.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/service.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "geo/geo_point.h"
#include "provision/augmentation.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RouteEngine;

constexpr RiskParams kParams{1e5, 1e3};

RiskGraph SampleGraph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  RiskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "pop-" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        rng.Uniform(0.01, 1.0), rng.Uniform(0.0, 0.5),
        rng.Chance(0.5) ? rng.Uniform(0.0, 50.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i + 3 < n; i += 3) graph.AddEdgeByDistance(i, i + 3);
  return graph;
}

api::Service MakeService(const RiskGraph& graph,
                         const api::ServiceOptions& options = {}) {
  return api::Service(RouteEngine(graph, kParams), options);
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("riskroute_api_test_" + name)).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ApiServiceTest, RouteAnswersWithBodyAndMetrics) {
  const RiskGraph graph = SampleGraph(30, 11);
  const api::Service service = MakeService(graph);

  api::RouteRequest request;
  request.from = "pop-0";
  request.to = "pop-29";
  const api::RouteResponse response = service.Route(request);
  ASSERT_TRUE(response.connected);
  EXPECT_FALSE(response.body.empty());
  EXPECT_EQ(response.shortest_path.front(), 0u);
  EXPECT_EQ(response.shortest_path.back(), 29u);
  EXPECT_EQ(response.riskroute_path.front(), 0u);
  EXPECT_EQ(response.riskroute_path.back(), 29u);
  // Eq 1: the risk-aware path never pays more bit-risk miles than the
  // shortest path, and never fewer raw miles.
  EXPECT_LE(response.riskroute.bit_risk_miles,
            response.shortest.bit_risk_miles);
  EXPECT_GE(response.riskroute.miles, response.shortest.miles);
  // The body opens with the two route lines and carries the hop table.
  EXPECT_EQ(response.body.rfind("shortest ", 0), 0u);
  EXPECT_NE(response.body.find("\nriskroute: "), std::string::npos);
  EXPECT_NE(response.body.find("per-hop bit-risk miles"), std::string::npos);
}

TEST(ApiServiceTest, RouteUnknownPopThrowsCliMessage) {
  const api::Service service = MakeService(SampleGraph(10, 3));
  api::RouteRequest request;
  request.from = "Atlantis, XX";
  request.to = "pop-1";
  try {
    (void)service.Route(request);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "no PoP named 'Atlantis, XX' in this network");
  }
}

TEST(ApiServiceTest, RouteDisconnectedPopsIsNotAnError) {
  // Two components: 0-1 and 2-3.
  RiskGraph graph;
  for (int i = 0; i < 4; ++i) {
    graph.AddNode(RiskNode{"pop-" + std::to_string(i),
                           geo::GeoPoint(30.0 + i, -100.0 + i), 0.5, 0.1,
                           0.0});
  }
  graph.AddEdgeByDistance(0, 1);
  graph.AddEdgeByDistance(2, 3);
  const api::Service service = MakeService(graph);
  api::RouteRequest request;
  request.from = "pop-0";
  request.to = "pop-3";
  const api::RouteResponse response = service.Route(request);
  EXPECT_FALSE(response.connected);
  EXPECT_TRUE(response.body.empty());
}

TEST(ApiServiceTest, SnapshotBootServesByteIdenticalBodies) {
  const RiskGraph graph = SampleGraph(24, 29);
  RouteEngine engine(graph, kParams);
  engine.PrepareLandmarks(4);

  TempFile snapshot("snapshot_parity.rre");
  engine.SaveSnapshotFile(snapshot.path());
  const api::Service live(std::move(engine));

  auto booted = api::Service::FromSnapshotFile(snapshot.path());
  ASSERT_TRUE(booted.ok()) << booted.error().Render();
  const api::Service& frozen = booted.value();

  api::RouteRequest route;
  route.from = "pop-2";
  route.to = "pop-21";
  EXPECT_EQ(live.Route(route).body, frozen.Route(route).body);

  api::RatiosRequest ratios;
  ratios.label = "parity";
  EXPECT_EQ(live.Ratios(ratios).body, frozen.Ratios(ratios).body);

  api::EnsembleRequest ensemble;
  ensemble.scenarios = 16;
  ensemble.top = 4;
  EXPECT_EQ(live.Ensemble(ensemble).body, frozen.Ensemble(ensemble).body);
  ensemble.json = true;
  EXPECT_EQ(live.Ensemble(ensemble).body, frozen.Ensemble(ensemble).body);

  api::ProvisionRequest provision;
  provision.links = 2;
  EXPECT_EQ(live.Provision(provision).body, frozen.Provision(provision).body);

  // Triaged ensemble: same frozen-vs-live contract, both renderings.
  ensemble.json = false;
  ensemble.triage = true;
  ensemble.scenarios = 512;
  ensemble.pilot = 32;
  ensemble.audit_stride = 64;
  EXPECT_EQ(live.Ensemble(ensemble).body, frozen.Ensemble(ensemble).body);
  ensemble.json = true;
  EXPECT_EQ(live.Ensemble(ensemble).body, frozen.Ensemble(ensemble).body);
}

TEST(ApiServiceTest, SnapshotBootRejectsHostileBytesWithDiagnostic) {
  TempFile bogus("bogus.rre");
  std::FILE* f = std::fopen(bogus.path().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot", f);
  std::fclose(f);
  const auto result = api::Service::FromSnapshotFile(bogus.path());
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.error().message.empty());
}

TEST(ApiServiceTest, RatiosMatchesIntradomainSweepBitwise) {
  const RiskGraph graph = SampleGraph(20, 7);
  util::ThreadPool pool(2);
  api::ServiceOptions options;
  options.pool = &pool;
  const api::Service service = MakeService(graph, options);

  const api::RatiosResponse response = service.Ratios({});
  const core::RatioReport direct =
      core::ComputeIntradomainRatios(graph, kParams, &pool);
  EXPECT_EQ(response.pops, graph.node_count());
  EXPECT_DOUBLE_EQ(response.report.risk_reduction_ratio,
                   direct.risk_reduction_ratio);
  EXPECT_DOUBLE_EQ(response.report.distance_increase_ratio,
                   direct.distance_increase_ratio);
  EXPECT_NE(response.body.find("snapshot"), std::string::npos);
}

TEST(ApiServiceTest, BodiesAreThreadCountIndependent) {
  const RiskGraph graph = SampleGraph(18, 13);
  api::EnsembleRequest ensemble;
  ensemble.scenarios = 24;
  ensemble.top = 5;
  api::RatiosRequest ratios;

  std::string ensemble_baseline;
  std::string ratios_baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    api::ServiceOptions options;
    options.pool = &pool;
    const api::Service service = MakeService(graph, options);
    const std::string ensemble_body = service.Ensemble(ensemble).body;
    const std::string ratios_body = service.Ratios(ratios).body;
    if (ensemble_baseline.empty()) {
      ensemble_baseline = ensemble_body;
      ratios_baseline = ratios_body;
    } else {
      // Bitwise: the PR 2 determinism contract, through the api layer.
      EXPECT_EQ(ensemble_body, ensemble_baseline) << threads << " threads";
      EXPECT_EQ(ratios_body, ratios_baseline) << threads << " threads";
    }
  }
}

TEST(ApiServiceTest, TriagedEnsembleBodiesAndAccounting) {
  const RiskGraph graph = SampleGraph(18, 13);
  api::EnsembleRequest request;
  request.scenarios = 4096;
  request.top = 4;
  request.triage = true;
  request.pilot = 48;
  request.audit_stride = 128;
  request.base_rate_ppm = 50'000;

  const api::Service service = MakeService(graph);
  const api::EnsembleResponse text = service.Ensemble(request);
  ASSERT_TRUE(text.triaged.has_value());
  // The response's headline report IS the HT estimate.
  EXPECT_EQ(text.report.ToJson(), text.triaged->estimate.ToJson());
  // The human body carries the triage accounting line.
  EXPECT_NE(text.body.find("triage:"), std::string::npos);

  api::EnsembleRequest json_request = request;
  json_request.json = true;
  const api::EnsembleResponse json = service.Ensemble(json_request);
  ASSERT_TRUE(json.triaged.has_value());
  // JSON body is exactly the triaged report's serialization.
  EXPECT_EQ(json.body, json.triaged->ToJson());
  EXPECT_NE(json.body.find("\"triage\""), std::string::npos);

  // Bitwise across worker-pool sizes, like the exact path.
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    api::ServiceOptions options;
    options.pool = &pool;
    const api::Service pooled = MakeService(graph, options);
    const std::string body = pooled.Ensemble(json_request).body;
    if (baseline.empty()) {
      baseline = body;
    } else {
      EXPECT_EQ(body, baseline) << threads << " threads";
    }
  }
  EXPECT_EQ(json.body, baseline);
}

TEST(ApiServiceTest, ProvisionMatchesGraphOverloadPath) {
  const RiskGraph graph = SampleGraph(16, 19);
  util::ThreadPool pool(2);
  api::ServiceOptions options;
  options.pool = &pool;
  const api::Service service = MakeService(graph, options);

  api::ProvisionRequest request;
  request.links = 2;
  const api::ProvisionResponse response = service.Provision(request);

  provision::AugmentationOptions aug;
  aug.links_to_add = 2;
  aug.candidates.max_candidates = graph.node_count() > 100 ? 120 : 400;
  const auto direct = provision::GreedyAugment(graph, kParams, aug, &pool);
  ASSERT_EQ(response.result.steps.size(), direct.steps.size());
  EXPECT_DOUBLE_EQ(response.result.original_bit_risk_miles,
                   direct.original_bit_risk_miles);
  for (std::size_t s = 0; s < direct.steps.size(); ++s) {
    EXPECT_EQ(response.result.steps[s].link.a, direct.steps[s].link.a);
    EXPECT_EQ(response.result.steps[s].link.b, direct.steps[s].link.b);
    EXPECT_DOUBLE_EQ(response.result.steps[s].fraction_of_original,
                     direct.steps[s].fraction_of_original);
  }
  EXPECT_EQ(response.body.rfind("aggregate bit-risk today: ", 0), 0u);
}

TEST(ApiServiceTest, ProvisionZeroLinksThrows) {
  const api::Service service = MakeService(SampleGraph(8, 5));
  api::ProvisionRequest request;
  request.links = 0;
  EXPECT_THROW((void)service.Provision(request), InvalidArgument);
}

TEST(ApiServiceTest, ServiceIsMovable) {
  api::Service service = MakeService(SampleGraph(12, 31));
  const std::string before = service.Ratios({}).body;
  api::Service moved = std::move(service);
  EXPECT_EQ(moved.Ratios({}).body, before);
}

}  // namespace
}  // namespace riskroute
