// Tests for seasonal hazard risk: month filtering, seasonal profiles in
// the synthesizers, and the SeasonalRiskField extension.
#include <gtest/gtest.h>

#include "hazard/seasonal.h"
#include "hazard/synthesis.h"
#include "util/error.h"

namespace riskroute::hazard {
namespace {

TEST(Season, MonthMapping) {
  EXPECT_EQ(SeasonOfMonth(1), Season::kWinter);
  EXPECT_EQ(SeasonOfMonth(12), Season::kWinter);
  EXPECT_EQ(SeasonOfMonth(4), Season::kSpring);
  EXPECT_EQ(SeasonOfMonth(7), Season::kSummer);
  EXPECT_EQ(SeasonOfMonth(9), Season::kFall);
  EXPECT_THROW((void)SeasonOfMonth(0), InvalidArgument);
  EXPECT_THROW((void)SeasonOfMonth(13), InvalidArgument);
}

TEST(Season, FilterMonthsWrapsAroundYear) {
  std::vector<Event> events;
  for (int m = 1; m <= 12; ++m) {
    events.push_back(Event{geo::GeoPoint(30, -90), 2000, m});
  }
  const Catalog catalog(HazardType::kFemaStorm, events);
  EXPECT_EQ(catalog.FilterMonths(3, 5).size(), 3u);
  EXPECT_EQ(catalog.FilterMonths(12, 2).size(), 3u);  // Dec, Jan, Feb
  EXPECT_EQ(catalog.FilterMonths(1, 12).size(), 12u);
  EXPECT_THROW((void)catalog.FilterMonths(0, 5), InvalidArgument);
}

TEST(Season, SynthesizedCatalogsFollowSeasonalProfiles) {
  const Catalog hurricanes = SynthesizeCatalog(HazardType::kFemaHurricane, 4);
  // Hurricanes: Aug-Oct must dominate Dec-Apr heavily.
  const std::size_t peak = hurricanes.FilterMonths(8, 10).size();
  const std::size_t off = hurricanes.FilterMonths(12, 4).size();
  EXPECT_GT(peak, 5 * (off + 1));

  const Catalog tornadoes = SynthesizeCatalog(HazardType::kFemaTornado, 4);
  EXPECT_GT(tornadoes.FilterMonths(4, 6).size(),
            2 * tornadoes.FilterMonths(11, 1).size());

  const Catalog quakes = SynthesizeCatalog(HazardType::kNoaaEarthquake, 4);
  // Aseasonal: each quarter within 2x of any other.
  const std::size_t q1 = quakes.FilterMonths(1, 3).size();
  const std::size_t q3 = quakes.FilterMonths(7, 9).size();
  EXPECT_LT(q1, 2 * q3);
  EXPECT_LT(q3, 2 * q1);
}

TEST(Season, ProfilesDefinedForAllTypes) {
  for (const HazardType type : AllHazardTypes()) {
    const auto profile = SeasonalProfile(type);
    double total = 0.0;
    for (const double w : profile) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
}

class SeasonalFieldTest : public ::testing::Test {
 protected:
  static const SeasonalRiskField& Field() {
    static const SeasonalRiskField field = [] {
      std::vector<Catalog> catalogs;
      catalogs.push_back(SynthesizeCatalog(HazardType::kFemaHurricane, 21));
      catalogs.push_back(SynthesizeCatalog(HazardType::kNoaaEarthquake, 22));
      return SeasonalRiskField(catalogs, {100.0, 250.0});
    }();
    return field;
  }
};

TEST_F(SeasonalFieldTest, GulfRiskPeaksInHurricaneSeason) {
  const geo::GeoPoint new_orleans(29.95, -90.07);
  const double summer = Field().RiskAt(new_orleans, Season::kSummer);
  const double fall = Field().RiskAt(new_orleans, Season::kFall);
  const double winter = Field().RiskAt(new_orleans, Season::kWinter);
  EXPECT_GT(fall, 3 * winter);    // Sep-Oct dominate
  EXPECT_GT(summer, winter);      // Jun-Aug beat Dec-Feb
}

TEST_F(SeasonalFieldTest, WestCoastRiskIsAseasonal) {
  const geo::GeoPoint la(34.05, -118.24);
  const double summer = Field().RiskAt(la, Season::kSummer);
  const double winter = Field().RiskAt(la, Season::kWinter);
  ASSERT_GT(winter, 0.0);
  EXPECT_LT(summer / winter, 1.8);
  EXPECT_GT(summer / winter, 0.55);
}

TEST_F(SeasonalFieldTest, MonthOverloadMatchesSeason) {
  const geo::GeoPoint p(29.95, -90.07);
  EXPECT_DOUBLE_EQ(Field().RiskAt(p, 9), Field().RiskAt(p, Season::kFall));
  EXPECT_DOUBLE_EQ(Field().RiskAt(p, 1), Field().RiskAt(p, Season::kWinter));
}

TEST_F(SeasonalFieldTest, AmplificationAboveOneInSeason) {
  const std::vector<geo::GeoPoint> gulf = {geo::GeoPoint(29.95, -90.07),
                                           geo::GeoPoint(30.4, -88.9),
                                           geo::GeoPoint(27.9, -82.6)};
  EXPECT_GT(Field().SeasonalAmplification(gulf, Season::kFall), 1.5);
  EXPECT_LT(Field().SeasonalAmplification(gulf, Season::kWinter), 0.5);
}

TEST_F(SeasonalFieldTest, CalibrationSetsSeasonAveragedMean) {
  std::vector<Catalog> catalogs;
  catalogs.push_back(SynthesizeCatalog(HazardType::kFemaHurricane, 31));
  SeasonalRiskField field(catalogs, {100.0});
  const std::vector<geo::GeoPoint> reference = {geo::GeoPoint(29.95, -90.07),
                                                geo::GeoPoint(32.8, -79.9)};
  field.CalibrateTo(reference, 0.2);
  double sum = 0.0;
  for (const auto& p : reference) {
    for (const Season s : AllSeasons()) sum += field.RiskAt(p, s);
  }
  EXPECT_NEAR(sum / (reference.size() * 4), 0.2, 1e-9);
}

TEST(SeasonalField, Validation) {
  EXPECT_THROW(SeasonalRiskField({}, {}), InvalidArgument);
  std::vector<Catalog> catalogs;
  catalogs.push_back(SynthesizeCatalog(HazardType::kFemaStorm, 41));
  EXPECT_THROW(SeasonalRiskField(catalogs, {1.0, 2.0}), InvalidArgument);
  SeasonalRiskField field(catalogs, {60.0});
  EXPECT_THROW(field.CalibrateTo({}, 0.1), InvalidArgument);
}

}  // namespace
}  // namespace riskroute::hazard
