// Unit and property tests for the spatial index structures: the kd-tree is
// checked against brute force on random point sets; the grid index must
// return supersets that exact-filter to the same answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "geo/bounding_box.h"
#include "geo/distance.h"
#include "spatial/grid_index.h"
#include "spatial/kd_tree.h"
#include "util/rng.h"

namespace riskroute::spatial {
namespace {

std::vector<geo::GeoPoint> RandomConusPoints(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geo::GeoPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.emplace_back(rng.Uniform(25, 49), rng.Uniform(-124, -67));
  }
  return points;
}

std::size_t BruteForceNearest(const std::vector<geo::GeoPoint>& points,
                              const geo::GeoPoint& q) {
  std::size_t best = 0;
  double best_miles = geo::GreatCircleMiles(points[0], q);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double miles = geo::GreatCircleMiles(points[i], q);
    if (miles < best_miles) {
      best_miles = miles;
      best = i;
    }
  }
  return best;
}

TEST(KdTree, EmptyTreeReturnsNothing) {
  const KdTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Nearest(geo::GeoPoint(40, -100)).has_value());
  EXPECT_TRUE(tree.KNearest(geo::GeoPoint(40, -100), 3).empty());
  EXPECT_TRUE(tree.WithinRadius(geo::GeoPoint(40, -100), 100).empty());
}

TEST(KdTree, SinglePoint) {
  const KdTree tree({geo::GeoPoint(40, -100)});
  const auto nn = tree.Nearest(geo::GeoPoint(41, -101));
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->index, 0u);
  EXPECT_NEAR(nn->miles,
              geo::GreatCircleMiles(geo::GeoPoint(40, -100),
                                    geo::GeoPoint(41, -101)),
              1e-6);
}

TEST(KdTree, NearestMatchesBruteForce) {
  const auto points = RandomConusPoints(500, 21);
  const KdTree tree(points);
  const auto queries = RandomConusPoints(200, 22);
  for (const auto& q : queries) {
    const auto nn = tree.Nearest(q);
    ASSERT_TRUE(nn.has_value());
    const std::size_t expected = BruteForceNearest(points, q);
    // Equal distance ties may pick either point; compare distances.
    EXPECT_NEAR(nn->miles, geo::GreatCircleMiles(points[expected], q), 1e-6);
  }
}

TEST(KdTree, KNearestSortedAndMatchesBruteForce) {
  const auto points = RandomConusPoints(300, 31);
  const KdTree tree(points);
  const geo::GeoPoint q(38.0, -95.0);
  const auto result = tree.KNearest(q, 10);
  ASSERT_EQ(result.size(), 10u);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].miles, result[i].miles);
  }
  // Brute force distances.
  std::vector<double> all;
  for (const auto& p : points) all.push_back(geo::GreatCircleMiles(p, q));
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_NEAR(result[i].miles, all[i], 1e-6);
  }
}

TEST(KdTree, KNearestClampsToSize) {
  const auto points = RandomConusPoints(5, 41);
  const KdTree tree(points);
  EXPECT_EQ(tree.KNearest(geo::GeoPoint(40, -100), 50).size(), 5u);
  EXPECT_TRUE(tree.KNearest(geo::GeoPoint(40, -100), 0).empty());
}

TEST(KdTree, WithinRadiusMatchesBruteForce) {
  const auto points = RandomConusPoints(400, 51);
  const KdTree tree(points);
  const geo::GeoPoint q(36.0, -98.0);
  for (const double radius : {0.0, 50.0, 200.0, 800.0}) {
    const auto result = tree.WithinRadius(q, radius);
    std::size_t expected = 0;
    for (const auto& p : points) {
      if (geo::GreatCircleMiles(p, q) <= radius) ++expected;
    }
    EXPECT_EQ(result.size(), expected) << "radius " << radius;
    for (std::size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].miles, result[i].miles);
    }
  }
}

TEST(KdTree, DuplicatePointsAllReturned) {
  std::vector<geo::GeoPoint> points(7, geo::GeoPoint(40, -100));
  const KdTree tree(points);
  EXPECT_EQ(tree.WithinRadius(geo::GeoPoint(40, -100), 1.0).size(), 7u);
}

class KdTreeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdTreeSizeSweep, NearestAlwaysAgreesWithBruteForce) {
  const std::size_t n = GetParam();
  const auto points = RandomConusPoints(n, 60 + n);
  const KdTree tree(points);
  const auto queries = RandomConusPoints(50, 61 + n);
  for (const auto& q : queries) {
    const auto nn = tree.Nearest(q);
    ASSERT_TRUE(nn.has_value());
    EXPECT_NEAR(nn->miles,
                geo::GreatCircleMiles(points[BruteForceNearest(points, q)], q),
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeSizeSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 100, 257));

TEST(GridIndex, WithinRadiusMatchesBruteForce) {
  const auto points = RandomConusPoints(600, 71);
  const geo::BoundingBox bounds = geo::BoundingBox::Around(points).Padded(0.5);
  const GridIndex index(points, bounds, 60.0);
  const auto queries = RandomConusPoints(50, 72);
  for (const auto& q : queries) {
    for (const double radius : {30.0, 120.0, 500.0}) {
      const auto got = index.WithinRadius(q, radius);
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (geo::GreatCircleMiles(points[i], q) <= radius) {
          expected.push_back(i);
        }
      }
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(GridIndex, VisitNearIsSuperset) {
  const auto points = RandomConusPoints(300, 81);
  const geo::BoundingBox bounds = geo::BoundingBox::Around(points).Padded(0.5);
  const GridIndex index(points, bounds, 40.0);
  const geo::GeoPoint q(38, -95);
  const double radius = 150.0;
  std::vector<bool> visited(points.size(), false);
  index.VisitNear(q, radius, [&](std::size_t i) { visited[i] = true; });
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (geo::GreatCircleMiles(points[i], q) <= radius) {
      EXPECT_TRUE(visited[i]) << "point " << i << " inside radius not visited";
    }
  }
}

TEST(GridIndex, PointsOutsideBoundsAreClamped) {
  const std::vector<geo::GeoPoint> points = {{20, -130}, {55, -60}, {38, -95}};
  const geo::BoundingBox bounds(25, -124, 49, -67);
  const GridIndex index(points, bounds, 100.0);
  EXPECT_EQ(index.size(), 3u);
  // Every point is still findable with a generous radius.
  const auto all = index.WithinRadius(geo::GeoPoint(38, -95), 4000.0);
  EXPECT_EQ(all.size(), 3u);
}

TEST(GridIndex, RejectsBadCellSize) {
  const auto points = RandomConusPoints(10, 91);
  const geo::BoundingBox bounds(25, -124, 49, -67);
  EXPECT_THROW(GridIndex(points, bounds, 0.0), InvalidArgument);
  EXPECT_THROW(GridIndex(points, bounds, -5.0), InvalidArgument);
}

}  // namespace
}  // namespace riskroute::spatial
