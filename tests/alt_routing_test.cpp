// ALT (A*, Landmarks, Triangle inequality) parity tests: with landmarks
// prepared, every targeted sweep must settle bitwise-identical distances
// to plain Dijkstra — for the distance metric, for every bit-risk alpha,
// under removal/disable overlays, and independently of thread count.
// EXPECT_EQ on doubles is deliberate throughout: the contract is bitwise
// identity, not tolerance-level agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <vector>

#include "core/edge_overlay.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/route_engine.h"
#include "geo/geo_point.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute {
namespace {

using core::DijkstraWorkspace;
using core::EdgeOverlay;
using core::PairMatrix;
using core::RiskGraph;
using core::RiskNode;
using core::RiskParams;
using core::RouteEngine;
using core::RouteMetric;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr RiskParams kParams{1e5, 1e3};

/// Random connected geometric graph with random risk attributes (same
/// construction as route_engine_test.cpp's RandomGraph).
RiskGraph RandomGraph(std::size_t n, double extra_edge_prob, util::Rng& rng) {
  RiskGraph graph;
  std::vector<double> fractions(n);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fractions[i] = rng.Uniform(0.01, 1.0);
    fraction_sum += fractions[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{
        "n" + std::to_string(i),
        geo::GeoPoint(rng.Uniform(26, 48), rng.Uniform(-123, -68)),
        fractions[i] / fraction_sum, rng.Uniform(0.0, 0.5),
        rng.Chance(0.3) ? rng.Uniform(0.0, 100.0) : 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(
               rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j) && rng.Chance(extra_edge_prob)) {
        graph.AddEdgeByDistance(i, j);
      }
    }
  }
  return graph;
}

void ExpectBitwiseEqual(const PairMatrix& a, const PairMatrix& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t i = 0; i < a.dist.size(); ++i) {
    EXPECT_EQ(a.dist[i], b.dist[i]) << "flat index " << i;
  }
}

TEST(AltRoutingTest, LandmarkSelectionIsDeterministicAndClamped) {
  util::Rng rng(7);
  const RiskGraph graph = RandomGraph(60, 0.05, rng);
  RouteEngine a(graph, kParams);
  RouteEngine b(graph, kParams);
  a.PrepareLandmarks(8);
  b.PrepareLandmarks(8);
  ASSERT_EQ(a.landmark_count(), 8u);
  const auto ids_a = a.landmark_ids();
  const auto ids_b = b.landmark_ids();
  ASSERT_EQ(ids_a.size(), ids_b.size());
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    EXPECT_EQ(ids_a[i], ids_b[i]);
  }
  // No duplicates: farthest-point coverage marks chosen nodes.
  std::vector<std::uint32_t> sorted(ids_a.begin(), ids_a.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());

  // Clamp to node count; zero clears.
  a.PrepareLandmarks(1000);
  EXPECT_EQ(a.landmark_count(), graph.node_count());
  a.PrepareLandmarks(0);
  EXPECT_EQ(a.landmark_count(), 0u);
  b.ClearLandmarks();
  EXPECT_EQ(b.landmark_count(), 0u);
}

TEST(AltRoutingTest, LandmarkTableMatchesFullDistanceSweeps) {
  util::Rng rng(11);
  const RiskGraph graph = RandomGraph(50, 0.04, rng);
  RouteEngine engine(graph, kParams);
  engine.PrepareLandmarks(6);
  DijkstraWorkspace ws;
  for (std::size_t l = 0; l < engine.landmark_count(); ++l) {
    engine.RunDistance(ws, engine.landmark_ids()[l]);
    for (std::size_t v = 0; v < graph.node_count(); ++v) {
      EXPECT_EQ(engine.LandmarkMiles(l, v),
                ws.Reached(v) ? ws.DistanceTo(v) : kInf);
    }
  }
}

TEST(AltRoutingTest, TargetedRunsMatchDijkstraBitwiseAcrossAlphas) {
  util::Rng rng(23);
  const RiskGraph graph = RandomGraph(80, 0.03, rng);
  RouteEngine plain(graph, kParams);
  RouteEngine alt(graph, kParams);
  alt.PrepareLandmarks(8);
  DijkstraWorkspace ws_plain;
  DijkstraWorkspace ws_alt;
  const std::size_t n = graph.node_count();
  for (std::size_t s = 0; s < n; s += 7) {
    for (std::size_t t = 0; t < n; t += 11) {
      if (s == t) continue;
      for (const double alpha : {0.0, alt.Alpha(s, t), 5.0}) {
        plain.Run(ws_plain, s, alpha, t);
        alt.Run(ws_alt, s, alpha, t);
        ASSERT_EQ(ws_plain.Reached(t), ws_alt.Reached(t));
        if (!ws_plain.Reached(t)) continue;
        EXPECT_EQ(ws_plain.DistanceTo(t), ws_alt.DistanceTo(t))
            << "s=" << s << " t=" << t << " alpha=" << alpha;
        // Parent chains may differ only on exact-tie paths, but any
        // returned path must carry the identical optimal weight.
        EXPECT_EQ(plain.PathWeight(ws_plain.PathTo(t), alpha),
                  alt.PathWeight(ws_alt.PathTo(t), alpha));
      }
    }
  }
}

TEST(AltRoutingTest, ManyToManyAndAllPairsMatchAcrossThreadCounts) {
  util::Rng rng(31);
  const RiskGraph graph = RandomGraph(70, 0.04, rng);
  RouteEngine plain(graph, kParams);
  RouteEngine alt(graph, kParams);
  alt.PrepareLandmarks(8);

  std::vector<std::size_t> sources{0, 5, 13, 28, 41, 66};
  std::vector<std::size_t> targets{2, 8};  // sparse: engages per-pair ALT
  for (const RouteMetric metric :
       {RouteMetric::kDistance, RouteMetric::kBitRisk}) {
    const PairMatrix reference = plain.ManyToMany(sources, targets, metric);
    ExpectBitwiseEqual(reference, alt.ManyToMany(sources, targets, metric));
    for (const std::size_t threads : {2u, 8u}) {
      util::ThreadPool pool(threads);
      ExpectBitwiseEqual(reference,
                         alt.ManyToMany(sources, targets, metric, &pool));
    }
  }

  util::ThreadPool pool(8);
  ExpectBitwiseEqual(plain.AllPairs(RouteMetric::kBitRisk),
                     alt.AllPairs(RouteMetric::kBitRisk, &pool));
}

TEST(AltRoutingTest, ComputeRatiosAndAggregatesMatchWithAltEnabled) {
  util::Rng rng(43);
  const RiskGraph graph = RandomGraph(60, 0.05, rng);
  RouteEngine plain(graph, kParams);
  RouteEngine alt(graph, kParams);
  alt.PrepareLandmarks(10);
  std::vector<std::size_t> nodes(graph.node_count());
  std::iota(nodes.begin(), nodes.end(), std::size_t{0});

  util::ThreadPool pool(4);
  const auto ref = plain.ComputeRatios(nodes, nodes);
  const auto got = alt.ComputeRatios(nodes, nodes, &pool);
  EXPECT_EQ(ref.risk_reduction_ratio, got.risk_reduction_ratio);
  EXPECT_EQ(ref.distance_increase_ratio, got.distance_increase_ratio);
  EXPECT_EQ(ref.pair_count, got.pair_count);

  EXPECT_EQ(plain.AggregateMinBitRisk(), alt.AggregateMinBitRisk(&pool));
  EXPECT_EQ(plain.SumMinBitRisk(nodes, nodes),
            alt.SumMinBitRisk(nodes, nodes, &pool));
}

TEST(AltRoutingTest, OverlayRemovalsKeepAltAdmissibleAdditionsBypassIt) {
  util::Rng rng(59);
  const RiskGraph graph = RandomGraph(60, 0.05, rng);
  RouteEngine plain(graph, kParams);
  RouteEngine alt(graph, kParams);
  alt.PrepareLandmarks(8);
  DijkstraWorkspace ws_plain;
  DijkstraWorkspace ws_alt;

  // Removals and disabled nodes only lengthen distances: the frozen-plane
  // bounds stay admissible and ALT must stay bitwise exact.
  EdgeOverlay removal;
  removal.RemoveEdge(graph.OutEdges(0).front().to, 0);
  removal.DisableNode(17);
  // An added edge can undercut the frozen miles plane: ALT must bypass
  // itself (AltUsable false) and still match plain Dijkstra bitwise.
  EdgeOverlay addition;
  addition.AddEdge(3, 47, 1.0);

  for (const EdgeOverlay* overlay : {&removal, &addition}) {
    for (std::size_t s = 0; s < graph.node_count(); s += 9) {
      for (std::size_t t = 1; t < graph.node_count(); t += 13) {
        if (s == t) continue;
        const double alpha = plain.Alpha(s, t);
        plain.Run(ws_plain, s, alpha, t, overlay);
        alt.Run(ws_alt, s, alpha, t, overlay);
        ASSERT_EQ(ws_plain.Reached(t), ws_alt.Reached(t));
        if (ws_plain.Reached(t)) {
          EXPECT_EQ(ws_plain.DistanceTo(t), ws_alt.DistanceTo(t));
        }
      }
    }
  }
}

TEST(AltRoutingTest, DisconnectedComponentsYieldInfinityBothWays) {
  // Two components: landmarks land in both (one per component first), and
  // cross-component targeted sweeps must report unreachable identically.
  RiskGraph graph;
  for (std::size_t i = 0; i < 8; ++i) {
    graph.AddNode(RiskNode{"n" + std::to_string(i),
                           geo::GeoPoint(30.0 + static_cast<double>(i), -100.0),
                           0.125, 0.1, 0.0});
  }
  for (std::size_t i = 1; i < 4; ++i) graph.AddEdgeByDistance(i - 1, i);
  for (std::size_t i = 5; i < 8; ++i) graph.AddEdgeByDistance(i - 1, i);
  RouteEngine plain(graph, kParams);
  RouteEngine alt(graph, kParams);
  alt.PrepareLandmarks(4);
  DijkstraWorkspace ws;
  alt.Run(ws, 0, 0.0, 6);
  EXPECT_FALSE(ws.Reached(6));
  const PairMatrix m =
      alt.ManyToMany(std::vector<std::size_t>{0}, std::vector<std::size_t>{6},
                     RouteMetric::kDistance);
  EXPECT_EQ(m.at(0, 0), kInf);
}

}  // namespace
}  // namespace riskroute
