// Tests for Suurballe/Bhandari disjoint path pairs, including brute-force
// optimality validation on random graphs.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "core/disjoint_paths.h"
#include "core/shortest_path.h"
#include "util/rng.h"

namespace riskroute::core {
namespace {

RiskGraph MakeGraph(std::size_t n, const std::vector<std::pair<int, int>>& edges) {
  RiskGraph graph;
  util::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{"n" + std::to_string(i),
                           geo::GeoPoint(30.0 + static_cast<double>(i),
                                         -100.0 + 2.0 * static_cast<double>(i)),
                           1.0 / static_cast<double>(n), 0.0, 0.0});
  }
  for (const auto& [a, b] : edges) {
    graph.AddEdgeByDistance(static_cast<std::size_t>(a),
                            static_cast<std::size_t>(b));
  }
  return graph;
}

bool NodeDisjointInterior(const Path& a, const Path& b) {
  std::set<std::size_t> interior(a.begin() + 1, a.end() - 1);
  for (std::size_t i = 1; i + 1 < b.size(); ++i) {
    if (interior.contains(b[i])) return false;
  }
  return true;
}

bool EdgeDisjoint(const Path& a, const Path& b) {
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 1; i < a.size(); ++i) {
    edges.insert({std::min(a[i - 1], a[i]), std::max(a[i - 1], a[i])});
  }
  for (std::size_t i = 1; i < b.size(); ++i) {
    if (edges.contains({std::min(b[i - 1], b[i]), std::max(b[i - 1], b[i])})) {
      return false;
    }
  }
  return true;
}

TEST(DisjointPaths, DiamondYieldsBothArms) {
  // 0-1-3 and 0-2-3.
  const RiskGraph graph = MakeGraph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto pair = FindDisjointPair(graph, 0, 3, EdgeWeightFn(DistanceWeight));
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(NodeDisjointInterior(pair->first, pair->second));
  EXPECT_TRUE(EdgeDisjoint(pair->first, pair->second));
  EXPECT_EQ(pair->first.front(), 0u);
  EXPECT_EQ(pair->first.back(), 3u);
  EXPECT_EQ(pair->second.front(), 0u);
  EXPECT_EQ(pair->second.back(), 3u);
}

TEST(DisjointPaths, BridgeGraphHasNoPair) {
  // 0-1-2: single chain, no two disjoint paths.
  const RiskGraph graph = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(FindDisjointPair(graph, 0, 2, EdgeWeightFn(DistanceWeight))
                   .has_value());
}

TEST(DisjointPaths, SharedNodeRequiresNodeSplit) {
  // Two edge-disjoint paths exist only through shared node 2:
  //   0-1-2-3-5  and  0-4-2-6-5 (both pass node 2).
  const RiskGraph graph = MakeGraph(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 5}, {0, 4}, {4, 2}, {2, 6}, {6, 5}});
  const auto edge_pair = FindDisjointPair(
      graph, 0, 5, EdgeWeightFn(DistanceWeight), Disjointness::kEdgeDisjoint);
  ASSERT_TRUE(edge_pair.has_value());
  EXPECT_TRUE(EdgeDisjoint(edge_pair->first, edge_pair->second));
  // Node-disjoint is impossible: node 2 is an articulation point.
  EXPECT_FALSE(FindDisjointPair(graph, 0, 5, EdgeWeightFn(DistanceWeight),
                                Disjointness::kNodeDisjoint)
                   .has_value());
}

TEST(DisjointPaths, SuurballeBeatsGreedyTwoStep) {
  // Classic Suurballe example: the greedy approach (shortest path, then
  // shortest in the pruned graph) can fail or be suboptimal; Suurballe's
  // joint optimization must find the true minimum pair. Trapezoid:
  //   0-1 cheap, 1-3 cheap (shortest path 0-1-3 uses both "bridging" arcs)
  //   0-2, 2-3, 1-2 arranged so the optimal pair is {0-1-2?-3...}.
  const RiskGraph graph =
      MakeGraph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {1, 2}});
  const auto pair = FindDisjointPair(graph, 0, 3, EdgeWeightFn(DistanceWeight));
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(NodeDisjointInterior(pair->first, pair->second));
  // The pair must be {0,1,3} and {0,2,3} (the only node-disjoint pair).
  const std::set<Path> got = {pair->first, pair->second};
  const std::set<Path> expected = {{0, 1, 3}, {0, 2, 3}};
  EXPECT_EQ(got, expected);
}

TEST(DisjointPaths, Validation) {
  const RiskGraph graph = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(
      (void)FindDisjointPair(graph, 0, 0, EdgeWeightFn(DistanceWeight)),
      InvalidArgument);
  EXPECT_THROW(
      (void)FindDisjointPair(graph, 0, 9, EdgeWeightFn(DistanceWeight)),
      InvalidArgument);
}

/// Brute force: enumerate all loopless paths, test all pairs.
void AllPaths(const RiskGraph& graph, std::size_t node, std::size_t dst,
              Path& current, std::vector<bool>& visited, std::vector<Path>& out) {
  if (node == dst) {
    out.push_back(current);
    return;
  }
  for (const RiskEdge& e : graph.OutEdges(node)) {
    if (visited[e.to]) continue;
    visited[e.to] = true;
    current.push_back(e.to);
    AllPaths(graph, e.to, dst, current, visited, out);
    current.pop_back();
    visited[e.to] = false;
  }
}

double WeightOf(const RiskGraph& graph, const Path& path) {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const RiskEdge& e : graph.OutEdges(path[i - 1])) {
      if (e.to == path[i]) total += e.miles;
    }
  }
  return total;
}

class DisjointRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointRandomSweep, MatchesBruteForceOptimum) {
  util::Rng rng(GetParam());
  RiskGraph graph;
  const std::size_t n = 7;
  for (std::size_t i = 0; i < n; ++i) {
    graph.AddNode(RiskNode{"r" + std::to_string(i),
                           geo::GeoPoint(rng.Uniform(28, 46),
                                         rng.Uniform(-120, -70)),
                           1.0 / n, 0.0, 0.0});
  }
  for (std::size_t i = 1; i < n; ++i) {
    graph.AddEdgeByDistance(
        i, static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(i) - 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j) && rng.Chance(0.35)) graph.AddEdgeByDistance(i, j);
    }
  }

  std::vector<Path> all;
  Path current{0};
  std::vector<bool> visited(n, false);
  visited[0] = true;
  AllPaths(graph, 0, n - 1, current, visited, all);

  for (const Disjointness mode :
       {Disjointness::kEdgeDisjoint, Disjointness::kNodeDisjoint}) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < all.size(); ++a) {
      for (std::size_t b = a + 1; b < all.size(); ++b) {
        const bool ok = mode == Disjointness::kEdgeDisjoint
                            ? EdgeDisjoint(all[a], all[b])
                            : (NodeDisjointInterior(all[a], all[b]) &&
                               EdgeDisjoint(all[a], all[b]));
        if (ok) {
          best = std::min(best,
                          WeightOf(graph, all[a]) + WeightOf(graph, all[b]));
        }
      }
    }
    const auto pair =
        FindDisjointPair(graph, 0, n - 1, EdgeWeightFn(DistanceWeight), mode);
    if (best == std::numeric_limits<double>::infinity()) {
      EXPECT_FALSE(pair.has_value());
    } else {
      ASSERT_TRUE(pair.has_value());
      EXPECT_NEAR(pair->total_weight, best, 1e-6);
      EXPECT_TRUE(EdgeDisjoint(pair->first, pair->second));
      if (mode == Disjointness::kNodeDisjoint) {
        EXPECT_TRUE(NodeDisjointInterior(pair->first, pair->second));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointRandomSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           111));

}  // namespace
}  // namespace riskroute::core
