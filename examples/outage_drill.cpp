// Outage drill: Monte-Carlo validation that RiskRoute's paths actually
// dodge disasters. Samples thousands of disaster events from the
// historical catalogs, disables PoPs inside each event's damage footprint,
// and compares how much (gravity-weighted) traffic had its path hit under
// shortest-path routing versus RiskRoute routing.
//
//   $ ./outage_drill [network] [trials]
//
// Defaults: Tinet, 2000 trials.
#include <cstdio>
#include <string>

#include "api/api.h"

using namespace riskroute;

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "Tinet";
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 2000;

  std::puts("Building the RiskRoute study...");
  const core::Study study = core::Study::Build();
  util::ThreadPool pool;

  const core::RiskGraph graph = study.BuildGraphFor(network_name);
  const sim::TrafficMatrix traffic = sim::TrafficMatrix::Gravity(graph);
  const auto catalogs = hazard::SynthesizeAllCatalogs();

  std::printf("\nDrilling %s (%zu PoPs) with %zu sampled disasters...\n",
              network_name.c_str(), graph.node_count(), trials);
  for (const double lambda : {1e4, 1e5, 1e6}) {
    sim::OutageSimOptions options;
    options.trials = trials;
    options.params = core::RiskParams{lambda, 0};
    const sim::OutageSimReport report =
        sim::RunOutageSimulation(graph, catalogs, traffic, options, &pool);
    std::printf(
        "  lambda_h=%.0e: transit traffic hit %.3f%% (shortest) vs %.3f%% "
        "(RiskRoute) -> ratio %.2f; endpoint loss %.3f%%; mean PoPs "
        "disabled/event %.2f\n",
        lambda, 100 * report.shortest_path_affected,
        100 * report.riskroute_affected, report.AffectedRatio(),
        100 * report.endpoint_loss, report.mean_pops_disabled);
  }
  std::puts(
      "\nA ratio below 1.0 means risk-aware paths crossed disaster zones "
      "less often than shortest paths — the bit-risk metric predicting "
      "real outage exposure.");
  return 0;
}
