// Hurricane rehearsal: replay a historical storm's advisory feed against a
// network and watch RiskRoute's preemptive rerouting respond tick by tick
// — the operational workflow the paper motivates with the by-hand reroutes
// carriers performed before Hurricane Sandy (its Section 1).
//
//   $ ./hurricane_rehearsal [network] [storm]
//
// network defaults to Level3; storm is one of IRENE, KATRINA, SANDY
// (default SANDY). The advisory text is parsed with the same NLP path the
// paper describes in Section 4.4.
#include <cstdio>
#include <string>

#include "api/api.h"

using namespace riskroute;

namespace {

const forecast::StormTrack& TrackByName(const std::string& name) {
  if (name == "IRENE") return forecast::IreneTrack();
  if (name == "KATRINA") return forecast::KatrinaTrack();
  return forecast::SandyTrack();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "Level3";
  const std::string storm_name =
      util::ToUpper(argc > 2 ? argv[2] : "SANDY");
  const forecast::StormTrack& track = TrackByName(storm_name);

  std::puts("Building the RiskRoute study...");
  const core::Study study = core::Study::Build();
  core::RiskGraph graph = study.BuildGraphFor(network_name);
  util::ThreadPool pool;
  const core::RiskParams params{1e5, 1e3};

  std::printf("\nReplaying %s against %s (%zu advisories, parsed from "
              "NHC-format bulletins)\n\n",
              track.name.c_str(), network_name.c_str(), track.advisory_count);
  std::printf("%-32s %8s %8s %10s %10s\n", "Advisory time", "in-hurr",
              "in-trop", "risk-ratio", "dist-ratio");

  const auto texts = forecast::GenerateAdvisoryTexts(track);
  for (std::size_t a = 0; a < texts.size(); a += 4) {
    // Parse the advisory text exactly as an operator's tooling would.
    const forecast::Advisory advisory = forecast::ParseAdvisory(texts[a]);
    const forecast::ForecastRiskField field(advisory);

    std::size_t in_hurricane = 0, in_tropical = 0;
    std::vector<double> risks(graph.node_count());
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      risks[i] = field.RiskAt(graph.node(i).location);
      const auto zone = forecast::ZoneAt(advisory, graph.node(i).location);
      if (zone == forecast::WindZone::kHurricane) ++in_hurricane;
      if (zone != forecast::WindZone::kNone) ++in_tropical;
    }
    graph.SetForecastRisks(risks);
    const core::RatioReport report =
        core::ComputeIntradomainRatios(graph, params, &pool);
    std::printf("%-32s %8zu %8zu %10.3f %10.3f\n",
                advisory.time.ToString().c_str(), in_hurricane, in_tropical,
                report.risk_reduction_ratio, report.distance_increase_ratio);
  }

  // Final tally: the storm's whole footprint.
  const forecast::StormScope scope(forecast::GenerateAdvisories(track));
  const auto& network = study.corpus().network(study.NetworkIndex(network_name));
  std::printf(
      "\nStorm total: %zu of %zu PoPs saw hurricane-force winds, %zu saw "
      "tropical-storm-force winds.\n",
      scope.CountPopsInZone(network, forecast::WindZone::kHurricane),
      network.pop_count(),
      scope.CountPopsInZone(network, forecast::WindZone::kTropical));
  return 0;
}
