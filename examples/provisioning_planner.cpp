// Provisioning planner: where should a network add capacity to harden
// itself against disaster outages? Runs both of the paper's Section 6.3
// analyses — intradomain link augmentation (Eq 4) and, for regional
// networks, the best new peering relationship.
//
//   $ ./provisioning_planner [network] [links_to_add]
//
// Defaults: Sprint, 5 links. For regional networks the peering
// recommendation is printed as well.
#include <cstdio>
#include <string>

#include "api/api.h"

using namespace riskroute;

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "Sprint";
  const std::size_t links =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 5;

  std::puts("Building the RiskRoute study...");
  const core::Study study = core::Study::Build();
  util::ThreadPool pool;
  const core::RiskParams params{1e5, 1e3};
  const std::size_t network_index = study.NetworkIndex(network_name);
  const topology::Network& network = study.corpus().network(network_index);

  // --- Link augmentation (Eq 4). ---
  const core::RiskGraph graph = study.BuildGraph(network_index);
  provision::AugmentationOptions options;
  options.links_to_add = links;
  options.candidates.max_candidates = graph.node_count() > 100 ? 120 : 400;
  std::printf("\nSearching the best %zu additional links for %s "
              "(%zu PoPs, %zu links)...\n",
              links, network_name.c_str(), network.pop_count(),
              network.link_count());
  const provision::AugmentationResult result =
      provision::GreedyAugment(graph, params, options, &pool);
  std::printf("Aggregate min bit-risk today: %.4g\n",
              result.original_bit_risk_miles);
  for (std::size_t s = 0; s < result.steps.size(); ++s) {
    const auto& step = result.steps[s];
    std::printf("  %zu. %s <-> %s  (%.0f mi)  -> %.2f%% of original risk\n",
                s + 1, graph.node(step.link.a).name.c_str(),
                graph.node(step.link.b).name.c_str(), step.link.direct_miles,
                100.0 * step.fraction_of_original);
  }
  if (result.steps.empty()) {
    std::puts("  (no candidate link improves the objective)");
  }

  // --- Peering recommendation (regional networks). ---
  if (network.kind() == topology::NetworkKind::kRegional) {
    std::printf("\nEvaluating new peering options for %s...\n",
                network_name.c_str());
    core::MergedGraph merged = study.BuildMerged();
    const provision::PeeringRecommendation recommendation =
        provision::RecommendPeering(merged, study.corpus(), network_index,
                                    params, 25.0, &pool);
    if (recommendation.best() == nullptr) {
      std::puts("  (no co-located non-peer network found)");
    } else {
      for (const auto& evaluation : recommendation.evaluations) {
        std::printf(
            "  peer with %-14s at %zu co-located PoPs -> %.2f%% lower "
            "bound bit-risk reduction\n",
            study.corpus().network(evaluation.peer.network).name().c_str(),
            evaluation.peer.pairs.size(),
            100.0 * (1.0 - evaluation.objective /
                               recommendation.baseline_objective));
      }
    }
  }
  return 0;
}
