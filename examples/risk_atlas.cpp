// Risk atlas: exports the hazard likelihood surfaces as CSV rasters and
// ranks all 23 networks by disaster exposure — "our analysis reveals the
// providers that have the highest risk to disaster-based outage events"
// (paper abstract).
//
//   $ ./risk_atlas [output_directory]
//
// Writes one CSV per hazard (lat, lon, density) plus networks_ranked.csv,
// and prints the ranking.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.h"

using namespace riskroute;

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "risk_atlas_out";
  std::filesystem::create_directories(out_dir);

  std::puts("Building the RiskRoute study...");
  const core::Study study = core::Study::Build();
  const hazard::HistoricalRiskField& field = study.hazard_field();
  const geo::BoundingBox& conus = geo::ConusBounds();
  constexpr std::size_t kRows = 60, kCols = 140;

  // --- Per-hazard rasters (the paper's Figure 4 surfaces). ---
  for (std::size_t m = 0; m < field.model_count(); ++m) {
    std::string file_name =
        util::ToLower(std::string(hazard::ToString(field.model_type(m))));
    for (char& c : file_name) {
      if (c == ' ') c = '_';
    }
    const auto path = out_dir / (file_name + ".csv");
    std::ofstream out(path);
    util::CsvWriter csv(out);
    csv.Write("latitude", "longitude", "density");
    const auto raster = field.model(m).Raster(conus, kRows, kCols);
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::size_t c = 0; c < kCols; ++c) {
        const double lat = conus.min_lat() +
                           (static_cast<double>(r) + 0.5) *
                               (conus.max_lat() - conus.min_lat()) / kRows;
        const double lon = conus.min_lon() +
                           (static_cast<double>(c) + 0.5) *
                               (conus.max_lon() - conus.min_lon()) / kCols;
        csv.Write(lat, lon, raster[r * kCols + c]);
      }
    }
    std::printf("wrote %s\n", path.c_str());
  }

  // --- Network exposure ranking. ---
  struct Exposure {
    std::string name;
    std::string kind;
    double mean_risk;
    double max_risk;
  };
  std::vector<Exposure> exposures;
  for (const topology::Network& network : study.corpus().networks()) {
    double sum = 0.0, peak = 0.0;
    for (const topology::Pop& pop : network.pops()) {
      const double risk = field.RiskAt(pop.location);
      sum += risk;
      peak = std::max(peak, risk);
    }
    exposures.push_back(Exposure{
        network.name(), std::string(topology::ToString(network.kind())),
        sum / static_cast<double>(network.pop_count()), peak});
  }
  std::sort(exposures.begin(), exposures.end(),
            [](const Exposure& a, const Exposure& b) {
              return a.mean_risk > b.mean_risk;
            });

  const auto ranking_path = out_dir / "networks_ranked.csv";
  std::ofstream out(ranking_path);
  util::CsvWriter csv(out);
  csv.Write("network", "kind", "mean_pop_risk", "max_pop_risk");
  std::puts("\nNetworks ranked by mean PoP disaster risk (highest first):");
  for (const Exposure& e : exposures) {
    csv.Write(e.name, e.kind, e.mean_risk, e.max_risk);
    std::printf("  %-14s %-9s mean %.4f  max %.4f\n", e.name.c_str(),
                e.kind.c_str(), e.mean_risk, e.max_risk);
  }
  std::printf("wrote %s\n", ranking_path.c_str());
  return 0;
}
