// Backup plan: everything the paper's Section 3 sketches for putting
// RiskRoute into practice, end to end for one network:
//
//   1. composite OSPF link costs (risk folded into the IGP metric),
//   2. IP Fast Reroute loop-free alternates under those costs,
//   3. MPLS-style bypass tunnels around the riskiest PoP,
//   4. a node-disjoint primary/backup pair (Suurballe) for a key city
//      pair — a backup that cannot share the primary's disaster fate.
//
//   $ ./backup_plan [network] [from] [to]
//
// Defaults: Sprint, its two highest-impact PoPs.
#include <algorithm>
#include <cstdio>
#include <string>

#include "api/api.h"

using namespace riskroute;

namespace {

void PrintPath(const core::RiskGraph& graph, const char* label,
               const core::Path& path) {
  std::printf("%s: ", label);
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::printf("%s%s", graph.node(path[i]).name.c_str(),
                i + 1 == path.size() ? "\n" : " -> ");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "Sprint";
  std::puts("Building the RiskRoute study...");
  const core::Study study = core::Study::Build();
  const core::RiskGraph graph = study.BuildGraphFor(network_name);

  // --- 1. Composite OSPF costs. ---
  core::OspfExportOptions ospf_options;
  ospf_options.params = core::RiskParams{1e5, 1e3};
  const auto costs = core::ComputeOspfCosts(graph, ospf_options);
  std::printf("\n1. Composite OSPF costs for %s (%zu links; top 5 by cost):\n",
              network_name.c_str(), costs.size());
  auto sorted = costs;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.cost > b.cost; });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    std::printf("   %-24s <-> %-24s cost %u\n",
                graph.node(sorted[i].a).name.c_str(),
                graph.node(sorted[i].b).name.c_str(), sorted[i].cost);
  }

  // --- 2. IP-FRR coverage under the composite weight. ---
  const auto weight = core::CompositeWeight(graph, ospf_options);
  const core::RoutingTable table = core::BuildRoutingTable(graph, weight);
  const auto lfas = core::ComputeLfas(graph, table);
  std::printf("\n2. IP Fast Reroute: %.1f%% of (src,dst) pairs have a "
              "loop-free alternate ready.\n",
              100.0 * core::LfaCoverage(lfas));

  // --- 3. MPLS bypass around the riskiest PoP. ---
  std::size_t riskiest = 0;
  for (std::size_t i = 1; i < graph.node_count(); ++i) {
    if (graph.node(i).historical_risk >
        graph.node(riskiest).historical_risk) {
      riskiest = i;
    }
  }
  std::printf("\n3. MPLS node protection for the riskiest PoP, %s "
              "(o_h = %.3f):\n",
              graph.node(riskiest).name.c_str(),
              graph.node(riskiest).historical_risk);
  std::size_t protected_count = 0, unprotectable = 0;
  for (const core::RiskEdge& e : graph.OutEdges(riskiest)) {
    for (const core::RiskEdge& f : graph.OutEdges(riskiest)) {
      if (e.to >= f.to) continue;
      const auto bypass = core::NodeBypass(graph, e.to, f.to, riskiest, weight);
      if (bypass) {
        ++protected_count;
      } else {
        ++unprotectable;
      }
    }
  }
  std::printf("   %zu neighbour pairs protected by bypass tunnels, %zu have "
              "no detour.\n",
              protected_count, unprotectable);

  // --- 4. Node-disjoint primary/backup pair. ---
  std::size_t src = 0, dst = 1;
  if (argc > 3) {
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      if (graph.node(i).name == argv[2]) src = i;
      if (graph.node(i).name == argv[3]) dst = i;
    }
  } else {
    // Two highest-impact PoPs: the pair whose traffic matters most.
    std::vector<std::size_t> order(graph.node_count());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return graph.node(a).impact_fraction > graph.node(b).impact_fraction;
    });
    src = order[0];
    dst = order[1];
  }
  std::printf("\n4. Node-disjoint primary/backup between %s and %s "
              "(bit-risk objective):\n",
              graph.node(src).name.c_str(), graph.node(dst).name.c_str());
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  const double alpha = router.Alpha(src, dst);
  const auto bit_risk_weight = [&](std::size_t, const core::RiskEdge& e) {
    return e.miles + alpha * router.NodeScore(e.to);
  };
  const auto pair = core::FindDisjointPair(
      graph, src, dst, bit_risk_weight, core::Disjointness::kNodeDisjoint);
  if (!pair) {
    std::puts("   no node-disjoint pair exists (articulation point between "
              "the endpoints)");
    return 0;
  }
  PrintPath(graph, "   primary", pair->first);
  PrintPath(graph, "   backup ", pair->second);
  std::printf("   combined bit-risk miles: %.0f — the backup shares no PoP "
              "with the primary, so no single disaster takes both.\n",
              pair->total_weight);
  return 0;
}
