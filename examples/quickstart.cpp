// Quickstart: assemble the study substrates, route one PoP pair with and
// without risk awareness, and compute a network-wide ratio report.
//
//   $ ./quickstart [network] [src_pop_name] [dst_pop_name]
//
// Defaults to Teliasonera, its first two PoPs if names are not given.
#include <cstdio>
#include <iostream>
#include <string>

#include "api/api.h"

using namespace riskroute;

namespace {

void PrintRoute(const core::RiskGraph& graph, const char* label,
                const core::RouteResult& route) {
  std::printf("%s: %.0f miles, %.0f bit-risk miles\n  ", label,
              route.miles, route.bit_risk_miles);
  for (std::size_t i = 0; i < route.path.size(); ++i) {
    std::printf("%s%s", graph.node(route.path[i]).name.c_str(),
                i + 1 == route.path.size() ? "\n" : " -> ");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "Teliasonera";

  std::puts("Building the RiskRoute study (synthetic corpus, census,");
  std::puts("hazard catalogs, KDE risk field)...");
  const core::Study study = core::Study::Build();

  const core::RiskGraph graph = study.BuildGraphFor(network_name);
  std::printf("\nNetwork %s: %zu PoPs, %zu directed edge entries\n",
              network_name.c_str(), graph.node_count(),
              graph.directed_edge_count());

  // Pick endpoints: arguments by name, or the geographically most distant
  // PoP pair (the interesting case for rerouting).
  std::size_t src = 0, dst = 1;
  if (argc > 3) {
    bool found_src = false, found_dst = false;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      if (graph.node(i).name == argv[2]) { src = i; found_src = true; }
      if (graph.node(i).name == argv[3]) { dst = i; found_dst = true; }
    }
    if (!found_src || !found_dst) {
      std::fprintf(stderr, "PoP name not found in %s\n", network_name.c_str());
      return 1;
    }
  } else {
    double best = 0.0;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      for (std::size_t j = i + 1; j < graph.node_count(); ++j) {
        const double miles = geo::GreatCircleMiles(graph.node(i).location,
                                                   graph.node(j).location);
        if (miles > best) { best = miles; src = i; dst = j; }
      }
    }
  }

  std::printf("\nRouting %s -> %s (lambda_h = 1e5, lambda_f = 1e3):\n\n",
              graph.node(src).name.c_str(), graph.node(dst).name.c_str());
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  const auto shortest = router.ShortestRoute(src, dst);
  const auto risk_aware = router.MinRiskRoute(src, dst);
  if (!shortest || !risk_aware) {
    std::fprintf(stderr, "PoPs are not connected\n");
    return 1;
  }
  PrintRoute(graph, "Geographic shortest path", *shortest);
  std::printf("\n");
  PrintRoute(graph, "RiskRoute (min bit-risk) ", *risk_aware);

  std::printf("\nBit-risk saved: %.1f%%, extra distance paid: %.1f%%\n",
              100.0 * (1.0 - risk_aware->bit_risk_miles /
                                 shortest->bit_risk_miles),
              100.0 * (risk_aware->miles / shortest->miles - 1.0));

  // Network-wide sweep through the typed api layer — the same
  // riskroute::api::Service the CLI subcommands and riskroute_serverd
  // answer from, so this body is byte-identical to `riskroute ratios`.
  const api::Service service(
      core::RouteEngine(graph, core::RiskParams{1e5, 1e3}));
  api::RatiosRequest ratios_request;
  ratios_request.label = network_name;
  const api::RatiosResponse ratios = service.Ratios(ratios_request);
  std::printf("\nNetwork-wide (all %zu PoPs, Eq 5/6 over every pair):\n%s",
              ratios.pops, ratios.body.c_str());
  return 0;
}
