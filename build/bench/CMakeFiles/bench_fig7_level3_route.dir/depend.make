# Empty dependencies file for bench_fig7_level3_route.
# This may be replaced when dependencies are built.
