file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_level3_route.dir/bench_fig7_level3_route.cpp.o"
  "CMakeFiles/bench_fig7_level3_route.dir/bench_fig7_level3_route.cpp.o.d"
  "bench_fig7_level3_route"
  "bench_fig7_level3_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_level3_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
