# Empty dependencies file for bench_fig13_regional_case_studies.
# This may be replaced when dependencies are built.
