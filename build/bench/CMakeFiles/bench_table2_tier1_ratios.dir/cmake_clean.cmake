file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tier1_ratios.dir/bench_table2_tier1_ratios.cpp.o"
  "CMakeFiles/bench_table2_tier1_ratios.dir/bench_table2_tier1_ratios.cpp.o.d"
  "bench_table2_tier1_ratios"
  "bench_table2_tier1_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tier1_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
