# Empty dependencies file for bench_table2_tier1_ratios.
# This may be replaced when dependencies are built.
