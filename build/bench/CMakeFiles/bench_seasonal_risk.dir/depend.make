# Empty dependencies file for bench_seasonal_risk.
# This may be replaced when dependencies are built.
