file(REMOVE_RECURSE
  "CMakeFiles/bench_seasonal_risk.dir/bench_seasonal_risk.cpp.o"
  "CMakeFiles/bench_seasonal_risk.dir/bench_seasonal_risk.cpp.o.d"
  "bench_seasonal_risk"
  "bench_seasonal_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seasonal_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
