file(REMOVE_RECURSE
  "CMakeFiles/bench_outage_validation.dir/bench_outage_validation.cpp.o"
  "CMakeFiles/bench_outage_validation.dir/bench_outage_validation.cpp.o.d"
  "bench_outage_validation"
  "bench_outage_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outage_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
