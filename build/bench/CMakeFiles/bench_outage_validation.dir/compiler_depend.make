# Empty compiler generated dependencies file for bench_outage_validation.
# This may be replaced when dependencies are built.
