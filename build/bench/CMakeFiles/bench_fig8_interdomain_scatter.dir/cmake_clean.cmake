file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_interdomain_scatter.dir/bench_fig8_interdomain_scatter.cpp.o"
  "CMakeFiles/bench_fig8_interdomain_scatter.dir/bench_fig8_interdomain_scatter.cpp.o.d"
  "bench_fig8_interdomain_scatter"
  "bench_fig8_interdomain_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_interdomain_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
