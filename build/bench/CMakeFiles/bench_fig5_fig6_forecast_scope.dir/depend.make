# Empty dependencies file for bench_fig5_fig6_forecast_scope.
# This may be replaced when dependencies are built.
