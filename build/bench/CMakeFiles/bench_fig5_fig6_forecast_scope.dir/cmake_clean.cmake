file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig6_forecast_scope.dir/bench_fig5_fig6_forecast_scope.cpp.o"
  "CMakeFiles/bench_fig5_fig6_forecast_scope.dir/bench_fig5_fig6_forecast_scope.cpp.o.d"
  "bench_fig5_fig6_forecast_scope"
  "bench_fig5_fig6_forecast_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig6_forecast_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
