# Empty dependencies file for bench_fig11_peering.
# This may be replaced when dependencies are built.
