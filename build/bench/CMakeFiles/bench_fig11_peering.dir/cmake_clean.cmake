file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_peering.dir/bench_fig11_peering.cpp.o"
  "CMakeFiles/bench_fig11_peering.dir/bench_fig11_peering.cpp.o.d"
  "bench_fig11_peering"
  "bench_fig11_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
