# Empty dependencies file for bench_fig9_augmentation_links.
# This may be replaced when dependencies are built.
