file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_augmentation_links.dir/bench_fig9_augmentation_links.cpp.o"
  "CMakeFiles/bench_fig9_augmentation_links.dir/bench_fig9_augmentation_links.cpp.o.d"
  "bench_fig9_augmentation_links"
  "bench_fig9_augmentation_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_augmentation_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
