file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bandwidths.dir/bench_table1_bandwidths.cpp.o"
  "CMakeFiles/bench_table1_bandwidths.dir/bench_table1_bandwidths.cpp.o.d"
  "bench_table1_bandwidths"
  "bench_table1_bandwidths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bandwidths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
