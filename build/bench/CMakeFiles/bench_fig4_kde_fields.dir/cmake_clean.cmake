file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_kde_fields.dir/bench_fig4_kde_fields.cpp.o"
  "CMakeFiles/bench_fig4_kde_fields.dir/bench_fig4_kde_fields.cpp.o.d"
  "bench_fig4_kde_fields"
  "bench_fig4_kde_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_kde_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
