# Empty dependencies file for bench_fig4_kde_fields.
# This may be replaced when dependencies are built.
