file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_augmentation_decay.dir/bench_fig10_augmentation_decay.cpp.o"
  "CMakeFiles/bench_fig10_augmentation_decay.dir/bench_fig10_augmentation_decay.cpp.o.d"
  "bench_fig10_augmentation_decay"
  "bench_fig10_augmentation_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_augmentation_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
