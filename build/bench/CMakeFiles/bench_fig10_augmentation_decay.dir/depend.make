# Empty dependencies file for bench_fig10_augmentation_decay.
# This may be replaced when dependencies are built.
