file(REMOVE_RECURSE
  "CMakeFiles/bench_bgp_restoration.dir/bench_bgp_restoration.cpp.o"
  "CMakeFiles/bench_bgp_restoration.dir/bench_bgp_restoration.cpp.o.d"
  "bench_bgp_restoration"
  "bench_bgp_restoration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bgp_restoration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
