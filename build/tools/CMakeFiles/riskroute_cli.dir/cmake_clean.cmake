file(REMOVE_RECURSE
  "CMakeFiles/riskroute_cli.dir/riskroute_cli.cpp.o"
  "CMakeFiles/riskroute_cli.dir/riskroute_cli.cpp.o.d"
  "riskroute"
  "riskroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
