# Empty compiler generated dependencies file for riskroute_cli.
# This may be replaced when dependencies are built.
