# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/population_test[1]_include.cmake")
include("/root/repo/build/tests/hazard_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/interdomain_test[1]_include.cmake")
include("/root/repo/build/tests/provision_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/projection_geojson_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/disjoint_paths_test[1]_include.cmake")
include("/root/repo/build/tests/seasonal_test[1]_include.cmake")
include("/root/repo/build/tests/io_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/random_graph_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
