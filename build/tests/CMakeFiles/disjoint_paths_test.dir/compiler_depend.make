# Empty compiler generated dependencies file for disjoint_paths_test.
# This may be replaced when dependencies are built.
