file(REMOVE_RECURSE
  "CMakeFiles/disjoint_paths_test.dir/disjoint_paths_test.cpp.o"
  "CMakeFiles/disjoint_paths_test.dir/disjoint_paths_test.cpp.o.d"
  "disjoint_paths_test"
  "disjoint_paths_test.pdb"
  "disjoint_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjoint_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
