# Empty dependencies file for interdomain_test.
# This may be replaced when dependencies are built.
