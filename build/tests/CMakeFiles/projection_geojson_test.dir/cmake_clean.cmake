file(REMOVE_RECURSE
  "CMakeFiles/projection_geojson_test.dir/projection_geojson_test.cpp.o"
  "CMakeFiles/projection_geojson_test.dir/projection_geojson_test.cpp.o.d"
  "projection_geojson_test"
  "projection_geojson_test.pdb"
  "projection_geojson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_geojson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
