# Empty dependencies file for seasonal_test.
# This may be replaced when dependencies are built.
