file(REMOVE_RECURSE
  "CMakeFiles/seasonal_test.dir/seasonal_test.cpp.o"
  "CMakeFiles/seasonal_test.dir/seasonal_test.cpp.o.d"
  "seasonal_test"
  "seasonal_test.pdb"
  "seasonal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seasonal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
