# Empty dependencies file for io_extensions_test.
# This may be replaced when dependencies are built.
