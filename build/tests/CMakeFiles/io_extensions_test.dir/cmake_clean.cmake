file(REMOVE_RECURSE
  "CMakeFiles/io_extensions_test.dir/io_extensions_test.cpp.o"
  "CMakeFiles/io_extensions_test.dir/io_extensions_test.cpp.o.d"
  "io_extensions_test"
  "io_extensions_test.pdb"
  "io_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
