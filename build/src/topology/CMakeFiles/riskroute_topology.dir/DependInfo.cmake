
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/corpus.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/corpus.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/corpus.cpp.o.d"
  "/root/repo/src/topology/gazetteer.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/gazetteer.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/gazetteer.cpp.o.d"
  "/root/repo/src/topology/generator.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/generator.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/generator.cpp.o.d"
  "/root/repo/src/topology/geojson.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/geojson.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/geojson.cpp.o.d"
  "/root/repo/src/topology/graphml.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/graphml.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/graphml.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/network.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/network.cpp.o.d"
  "/root/repo/src/topology/serialize.cpp" "src/topology/CMakeFiles/riskroute_topology.dir/serialize.cpp.o" "gcc" "src/topology/CMakeFiles/riskroute_topology.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
