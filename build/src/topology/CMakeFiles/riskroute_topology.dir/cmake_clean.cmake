file(REMOVE_RECURSE
  "CMakeFiles/riskroute_topology.dir/corpus.cpp.o"
  "CMakeFiles/riskroute_topology.dir/corpus.cpp.o.d"
  "CMakeFiles/riskroute_topology.dir/gazetteer.cpp.o"
  "CMakeFiles/riskroute_topology.dir/gazetteer.cpp.o.d"
  "CMakeFiles/riskroute_topology.dir/generator.cpp.o"
  "CMakeFiles/riskroute_topology.dir/generator.cpp.o.d"
  "CMakeFiles/riskroute_topology.dir/geojson.cpp.o"
  "CMakeFiles/riskroute_topology.dir/geojson.cpp.o.d"
  "CMakeFiles/riskroute_topology.dir/graphml.cpp.o"
  "CMakeFiles/riskroute_topology.dir/graphml.cpp.o.d"
  "CMakeFiles/riskroute_topology.dir/network.cpp.o"
  "CMakeFiles/riskroute_topology.dir/network.cpp.o.d"
  "CMakeFiles/riskroute_topology.dir/serialize.cpp.o"
  "CMakeFiles/riskroute_topology.dir/serialize.cpp.o.d"
  "libriskroute_topology.a"
  "libriskroute_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
