# Empty compiler generated dependencies file for riskroute_topology.
# This may be replaced when dependencies are built.
