file(REMOVE_RECURSE
  "libriskroute_topology.a"
)
