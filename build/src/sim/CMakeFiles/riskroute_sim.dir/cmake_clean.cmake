file(REMOVE_RECURSE
  "CMakeFiles/riskroute_sim.dir/outage_sim.cpp.o"
  "CMakeFiles/riskroute_sim.dir/outage_sim.cpp.o.d"
  "CMakeFiles/riskroute_sim.dir/traffic.cpp.o"
  "CMakeFiles/riskroute_sim.dir/traffic.cpp.o.d"
  "libriskroute_sim.a"
  "libriskroute_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
