# Empty dependencies file for riskroute_sim.
# This may be replaced when dependencies are built.
