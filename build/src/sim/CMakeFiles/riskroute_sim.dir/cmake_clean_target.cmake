file(REMOVE_RECURSE
  "libriskroute_sim.a"
)
