file(REMOVE_RECURSE
  "libriskroute_hazard.a"
)
