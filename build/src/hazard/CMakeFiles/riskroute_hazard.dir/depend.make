# Empty dependencies file for riskroute_hazard.
# This may be replaced when dependencies are built.
