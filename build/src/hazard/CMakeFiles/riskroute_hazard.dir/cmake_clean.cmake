file(REMOVE_RECURSE
  "CMakeFiles/riskroute_hazard.dir/catalog.cpp.o"
  "CMakeFiles/riskroute_hazard.dir/catalog.cpp.o.d"
  "CMakeFiles/riskroute_hazard.dir/catalog_io.cpp.o"
  "CMakeFiles/riskroute_hazard.dir/catalog_io.cpp.o.d"
  "CMakeFiles/riskroute_hazard.dir/duration.cpp.o"
  "CMakeFiles/riskroute_hazard.dir/duration.cpp.o.d"
  "CMakeFiles/riskroute_hazard.dir/risk_field.cpp.o"
  "CMakeFiles/riskroute_hazard.dir/risk_field.cpp.o.d"
  "CMakeFiles/riskroute_hazard.dir/seasonal.cpp.o"
  "CMakeFiles/riskroute_hazard.dir/seasonal.cpp.o.d"
  "CMakeFiles/riskroute_hazard.dir/synthesis.cpp.o"
  "CMakeFiles/riskroute_hazard.dir/synthesis.cpp.o.d"
  "libriskroute_hazard.a"
  "libriskroute_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
