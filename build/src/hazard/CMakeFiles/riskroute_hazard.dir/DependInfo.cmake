
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hazard/catalog.cpp" "src/hazard/CMakeFiles/riskroute_hazard.dir/catalog.cpp.o" "gcc" "src/hazard/CMakeFiles/riskroute_hazard.dir/catalog.cpp.o.d"
  "/root/repo/src/hazard/catalog_io.cpp" "src/hazard/CMakeFiles/riskroute_hazard.dir/catalog_io.cpp.o" "gcc" "src/hazard/CMakeFiles/riskroute_hazard.dir/catalog_io.cpp.o.d"
  "/root/repo/src/hazard/duration.cpp" "src/hazard/CMakeFiles/riskroute_hazard.dir/duration.cpp.o" "gcc" "src/hazard/CMakeFiles/riskroute_hazard.dir/duration.cpp.o.d"
  "/root/repo/src/hazard/risk_field.cpp" "src/hazard/CMakeFiles/riskroute_hazard.dir/risk_field.cpp.o" "gcc" "src/hazard/CMakeFiles/riskroute_hazard.dir/risk_field.cpp.o.d"
  "/root/repo/src/hazard/seasonal.cpp" "src/hazard/CMakeFiles/riskroute_hazard.dir/seasonal.cpp.o" "gcc" "src/hazard/CMakeFiles/riskroute_hazard.dir/seasonal.cpp.o.d"
  "/root/repo/src/hazard/synthesis.cpp" "src/hazard/CMakeFiles/riskroute_hazard.dir/synthesis.cpp.o" "gcc" "src/hazard/CMakeFiles/riskroute_hazard.dir/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/riskroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/riskroute_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/riskroute_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
