file(REMOVE_RECURSE
  "libriskroute_spatial.a"
)
