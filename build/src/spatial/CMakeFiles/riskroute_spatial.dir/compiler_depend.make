# Empty compiler generated dependencies file for riskroute_spatial.
# This may be replaced when dependencies are built.
