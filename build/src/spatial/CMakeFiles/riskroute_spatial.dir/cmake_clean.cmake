file(REMOVE_RECURSE
  "CMakeFiles/riskroute_spatial.dir/grid_index.cpp.o"
  "CMakeFiles/riskroute_spatial.dir/grid_index.cpp.o.d"
  "CMakeFiles/riskroute_spatial.dir/kd_tree.cpp.o"
  "CMakeFiles/riskroute_spatial.dir/kd_tree.cpp.o.d"
  "libriskroute_spatial.a"
  "libriskroute_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
