
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bandwidth_cv.cpp" "src/stats/CMakeFiles/riskroute_stats.dir/bandwidth_cv.cpp.o" "gcc" "src/stats/CMakeFiles/riskroute_stats.dir/bandwidth_cv.cpp.o.d"
  "/root/repo/src/stats/kernel_density.cpp" "src/stats/CMakeFiles/riskroute_stats.dir/kernel_density.cpp.o" "gcc" "src/stats/CMakeFiles/riskroute_stats.dir/kernel_density.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/riskroute_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/riskroute_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/riskroute_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/riskroute_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/riskroute_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
