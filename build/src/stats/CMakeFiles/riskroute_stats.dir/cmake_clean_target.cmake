file(REMOVE_RECURSE
  "libriskroute_stats.a"
)
