# Empty dependencies file for riskroute_stats.
# This may be replaced when dependencies are built.
