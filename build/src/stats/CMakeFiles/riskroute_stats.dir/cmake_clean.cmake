file(REMOVE_RECURSE
  "CMakeFiles/riskroute_stats.dir/bandwidth_cv.cpp.o"
  "CMakeFiles/riskroute_stats.dir/bandwidth_cv.cpp.o.d"
  "CMakeFiles/riskroute_stats.dir/kernel_density.cpp.o"
  "CMakeFiles/riskroute_stats.dir/kernel_density.cpp.o.d"
  "CMakeFiles/riskroute_stats.dir/regression.cpp.o"
  "CMakeFiles/riskroute_stats.dir/regression.cpp.o.d"
  "CMakeFiles/riskroute_stats.dir/summary.cpp.o"
  "CMakeFiles/riskroute_stats.dir/summary.cpp.o.d"
  "libriskroute_stats.a"
  "libriskroute_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
