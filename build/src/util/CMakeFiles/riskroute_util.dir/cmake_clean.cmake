file(REMOVE_RECURSE
  "CMakeFiles/riskroute_util.dir/csv.cpp.o"
  "CMakeFiles/riskroute_util.dir/csv.cpp.o.d"
  "CMakeFiles/riskroute_util.dir/rng.cpp.o"
  "CMakeFiles/riskroute_util.dir/rng.cpp.o.d"
  "CMakeFiles/riskroute_util.dir/strings.cpp.o"
  "CMakeFiles/riskroute_util.dir/strings.cpp.o.d"
  "CMakeFiles/riskroute_util.dir/table.cpp.o"
  "CMakeFiles/riskroute_util.dir/table.cpp.o.d"
  "CMakeFiles/riskroute_util.dir/thread_pool.cpp.o"
  "CMakeFiles/riskroute_util.dir/thread_pool.cpp.o.d"
  "libriskroute_util.a"
  "libriskroute_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
