# Empty compiler generated dependencies file for riskroute_util.
# This may be replaced when dependencies are built.
