file(REMOVE_RECURSE
  "libriskroute_util.a"
)
