file(REMOVE_RECURSE
  "libriskroute_core.a"
)
