
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backup_paths.cpp" "src/core/CMakeFiles/riskroute_core.dir/backup_paths.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/backup_paths.cpp.o.d"
  "/root/repo/src/core/disjoint_paths.cpp" "src/core/CMakeFiles/riskroute_core.dir/disjoint_paths.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/disjoint_paths.cpp.o.d"
  "/root/repo/src/core/interdomain.cpp" "src/core/CMakeFiles/riskroute_core.dir/interdomain.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/interdomain.cpp.o.d"
  "/root/repo/src/core/k_shortest.cpp" "src/core/CMakeFiles/riskroute_core.dir/k_shortest.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/k_shortest.cpp.o.d"
  "/root/repo/src/core/multi_objective.cpp" "src/core/CMakeFiles/riskroute_core.dir/multi_objective.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/multi_objective.cpp.o.d"
  "/root/repo/src/core/ospf_export.cpp" "src/core/CMakeFiles/riskroute_core.dir/ospf_export.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/ospf_export.cpp.o.d"
  "/root/repo/src/core/risk_graph.cpp" "src/core/CMakeFiles/riskroute_core.dir/risk_graph.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/risk_graph.cpp.o.d"
  "/root/repo/src/core/riskroute.cpp" "src/core/CMakeFiles/riskroute_core.dir/riskroute.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/riskroute.cpp.o.d"
  "/root/repo/src/core/shortest_path.cpp" "src/core/CMakeFiles/riskroute_core.dir/shortest_path.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/shortest_path.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/riskroute_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/riskroute_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hazard/CMakeFiles/riskroute_hazard.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/riskroute_population.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/riskroute_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/riskroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/riskroute_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
