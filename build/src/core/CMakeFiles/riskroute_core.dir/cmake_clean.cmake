file(REMOVE_RECURSE
  "CMakeFiles/riskroute_core.dir/backup_paths.cpp.o"
  "CMakeFiles/riskroute_core.dir/backup_paths.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/disjoint_paths.cpp.o"
  "CMakeFiles/riskroute_core.dir/disjoint_paths.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/interdomain.cpp.o"
  "CMakeFiles/riskroute_core.dir/interdomain.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/k_shortest.cpp.o"
  "CMakeFiles/riskroute_core.dir/k_shortest.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/multi_objective.cpp.o"
  "CMakeFiles/riskroute_core.dir/multi_objective.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/ospf_export.cpp.o"
  "CMakeFiles/riskroute_core.dir/ospf_export.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/risk_graph.cpp.o"
  "CMakeFiles/riskroute_core.dir/risk_graph.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/riskroute.cpp.o"
  "CMakeFiles/riskroute_core.dir/riskroute.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/shortest_path.cpp.o"
  "CMakeFiles/riskroute_core.dir/shortest_path.cpp.o.d"
  "CMakeFiles/riskroute_core.dir/study.cpp.o"
  "CMakeFiles/riskroute_core.dir/study.cpp.o.d"
  "libriskroute_core.a"
  "libriskroute_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
