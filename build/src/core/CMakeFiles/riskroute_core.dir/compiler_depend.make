# Empty compiler generated dependencies file for riskroute_core.
# This may be replaced when dependencies are built.
