file(REMOVE_RECURSE
  "libriskroute_provision.a"
)
