# Empty dependencies file for riskroute_provision.
# This may be replaced when dependencies are built.
