file(REMOVE_RECURSE
  "CMakeFiles/riskroute_provision.dir/augmentation.cpp.o"
  "CMakeFiles/riskroute_provision.dir/augmentation.cpp.o.d"
  "CMakeFiles/riskroute_provision.dir/candidate_links.cpp.o"
  "CMakeFiles/riskroute_provision.dir/candidate_links.cpp.o.d"
  "CMakeFiles/riskroute_provision.dir/peering.cpp.o"
  "CMakeFiles/riskroute_provision.dir/peering.cpp.o.d"
  "CMakeFiles/riskroute_provision.dir/shared_risk.cpp.o"
  "CMakeFiles/riskroute_provision.dir/shared_risk.cpp.o.d"
  "libriskroute_provision.a"
  "libriskroute_provision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_provision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
