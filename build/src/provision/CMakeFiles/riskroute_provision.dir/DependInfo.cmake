
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provision/augmentation.cpp" "src/provision/CMakeFiles/riskroute_provision.dir/augmentation.cpp.o" "gcc" "src/provision/CMakeFiles/riskroute_provision.dir/augmentation.cpp.o.d"
  "/root/repo/src/provision/candidate_links.cpp" "src/provision/CMakeFiles/riskroute_provision.dir/candidate_links.cpp.o" "gcc" "src/provision/CMakeFiles/riskroute_provision.dir/candidate_links.cpp.o.d"
  "/root/repo/src/provision/peering.cpp" "src/provision/CMakeFiles/riskroute_provision.dir/peering.cpp.o" "gcc" "src/provision/CMakeFiles/riskroute_provision.dir/peering.cpp.o.d"
  "/root/repo/src/provision/shared_risk.cpp" "src/provision/CMakeFiles/riskroute_provision.dir/shared_risk.cpp.o" "gcc" "src/provision/CMakeFiles/riskroute_provision.dir/shared_risk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/riskroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riskroute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/riskroute_population.dir/DependInfo.cmake"
  "/root/repo/build/src/hazard/CMakeFiles/riskroute_hazard.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/riskroute_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/riskroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/riskroute_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
