file(REMOVE_RECURSE
  "CMakeFiles/riskroute_geo.dir/bounding_box.cpp.o"
  "CMakeFiles/riskroute_geo.dir/bounding_box.cpp.o.d"
  "CMakeFiles/riskroute_geo.dir/conus.cpp.o"
  "CMakeFiles/riskroute_geo.dir/conus.cpp.o.d"
  "CMakeFiles/riskroute_geo.dir/distance.cpp.o"
  "CMakeFiles/riskroute_geo.dir/distance.cpp.o.d"
  "CMakeFiles/riskroute_geo.dir/geo_point.cpp.o"
  "CMakeFiles/riskroute_geo.dir/geo_point.cpp.o.d"
  "libriskroute_geo.a"
  "libriskroute_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
