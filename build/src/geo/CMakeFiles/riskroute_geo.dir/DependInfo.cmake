
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/bounding_box.cpp" "src/geo/CMakeFiles/riskroute_geo.dir/bounding_box.cpp.o" "gcc" "src/geo/CMakeFiles/riskroute_geo.dir/bounding_box.cpp.o.d"
  "/root/repo/src/geo/conus.cpp" "src/geo/CMakeFiles/riskroute_geo.dir/conus.cpp.o" "gcc" "src/geo/CMakeFiles/riskroute_geo.dir/conus.cpp.o.d"
  "/root/repo/src/geo/distance.cpp" "src/geo/CMakeFiles/riskroute_geo.dir/distance.cpp.o" "gcc" "src/geo/CMakeFiles/riskroute_geo.dir/distance.cpp.o.d"
  "/root/repo/src/geo/geo_point.cpp" "src/geo/CMakeFiles/riskroute_geo.dir/geo_point.cpp.o" "gcc" "src/geo/CMakeFiles/riskroute_geo.dir/geo_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
