# Empty dependencies file for riskroute_geo.
# This may be replaced when dependencies are built.
