file(REMOVE_RECURSE
  "libriskroute_geo.a"
)
