
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/advisory.cpp" "src/forecast/CMakeFiles/riskroute_forecast.dir/advisory.cpp.o" "gcc" "src/forecast/CMakeFiles/riskroute_forecast.dir/advisory.cpp.o.d"
  "/root/repo/src/forecast/forecast_risk.cpp" "src/forecast/CMakeFiles/riskroute_forecast.dir/forecast_risk.cpp.o" "gcc" "src/forecast/CMakeFiles/riskroute_forecast.dir/forecast_risk.cpp.o.d"
  "/root/repo/src/forecast/parser.cpp" "src/forecast/CMakeFiles/riskroute_forecast.dir/parser.cpp.o" "gcc" "src/forecast/CMakeFiles/riskroute_forecast.dir/parser.cpp.o.d"
  "/root/repo/src/forecast/projection.cpp" "src/forecast/CMakeFiles/riskroute_forecast.dir/projection.cpp.o" "gcc" "src/forecast/CMakeFiles/riskroute_forecast.dir/projection.cpp.o.d"
  "/root/repo/src/forecast/tracks.cpp" "src/forecast/CMakeFiles/riskroute_forecast.dir/tracks.cpp.o" "gcc" "src/forecast/CMakeFiles/riskroute_forecast.dir/tracks.cpp.o.d"
  "/root/repo/src/forecast/writer.cpp" "src/forecast/CMakeFiles/riskroute_forecast.dir/writer.cpp.o" "gcc" "src/forecast/CMakeFiles/riskroute_forecast.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/riskroute_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
