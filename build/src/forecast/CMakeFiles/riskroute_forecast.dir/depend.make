# Empty dependencies file for riskroute_forecast.
# This may be replaced when dependencies are built.
