file(REMOVE_RECURSE
  "CMakeFiles/riskroute_forecast.dir/advisory.cpp.o"
  "CMakeFiles/riskroute_forecast.dir/advisory.cpp.o.d"
  "CMakeFiles/riskroute_forecast.dir/forecast_risk.cpp.o"
  "CMakeFiles/riskroute_forecast.dir/forecast_risk.cpp.o.d"
  "CMakeFiles/riskroute_forecast.dir/parser.cpp.o"
  "CMakeFiles/riskroute_forecast.dir/parser.cpp.o.d"
  "CMakeFiles/riskroute_forecast.dir/projection.cpp.o"
  "CMakeFiles/riskroute_forecast.dir/projection.cpp.o.d"
  "CMakeFiles/riskroute_forecast.dir/tracks.cpp.o"
  "CMakeFiles/riskroute_forecast.dir/tracks.cpp.o.d"
  "CMakeFiles/riskroute_forecast.dir/writer.cpp.o"
  "CMakeFiles/riskroute_forecast.dir/writer.cpp.o.d"
  "libriskroute_forecast.a"
  "libriskroute_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
