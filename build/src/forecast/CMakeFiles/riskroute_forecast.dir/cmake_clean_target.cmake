file(REMOVE_RECURSE
  "libriskroute_forecast.a"
)
