# Empty compiler generated dependencies file for riskroute_population.
# This may be replaced when dependencies are built.
