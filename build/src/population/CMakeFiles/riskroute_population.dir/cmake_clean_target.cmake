file(REMOVE_RECURSE
  "libriskroute_population.a"
)
