file(REMOVE_RECURSE
  "CMakeFiles/riskroute_population.dir/assignment.cpp.o"
  "CMakeFiles/riskroute_population.dir/assignment.cpp.o.d"
  "CMakeFiles/riskroute_population.dir/census.cpp.o"
  "CMakeFiles/riskroute_population.dir/census.cpp.o.d"
  "CMakeFiles/riskroute_population.dir/census_io.cpp.o"
  "CMakeFiles/riskroute_population.dir/census_io.cpp.o.d"
  "libriskroute_population.a"
  "libriskroute_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
