
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/population/assignment.cpp" "src/population/CMakeFiles/riskroute_population.dir/assignment.cpp.o" "gcc" "src/population/CMakeFiles/riskroute_population.dir/assignment.cpp.o.d"
  "/root/repo/src/population/census.cpp" "src/population/CMakeFiles/riskroute_population.dir/census.cpp.o" "gcc" "src/population/CMakeFiles/riskroute_population.dir/census.cpp.o.d"
  "/root/repo/src/population/census_io.cpp" "src/population/CMakeFiles/riskroute_population.dir/census_io.cpp.o" "gcc" "src/population/CMakeFiles/riskroute_population.dir/census_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/riskroute_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/riskroute_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
