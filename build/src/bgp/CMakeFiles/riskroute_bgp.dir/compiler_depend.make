# Empty compiler generated dependencies file for riskroute_bgp.
# This may be replaced when dependencies are built.
