file(REMOVE_RECURSE
  "CMakeFiles/riskroute_bgp.dir/path_vector.cpp.o"
  "CMakeFiles/riskroute_bgp.dir/path_vector.cpp.o.d"
  "CMakeFiles/riskroute_bgp.dir/relationships.cpp.o"
  "CMakeFiles/riskroute_bgp.dir/relationships.cpp.o.d"
  "CMakeFiles/riskroute_bgp.dir/restoration.cpp.o"
  "CMakeFiles/riskroute_bgp.dir/restoration.cpp.o.d"
  "CMakeFiles/riskroute_bgp.dir/risk_selection.cpp.o"
  "CMakeFiles/riskroute_bgp.dir/risk_selection.cpp.o.d"
  "libriskroute_bgp.a"
  "libriskroute_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskroute_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
