
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/path_vector.cpp" "src/bgp/CMakeFiles/riskroute_bgp.dir/path_vector.cpp.o" "gcc" "src/bgp/CMakeFiles/riskroute_bgp.dir/path_vector.cpp.o.d"
  "/root/repo/src/bgp/relationships.cpp" "src/bgp/CMakeFiles/riskroute_bgp.dir/relationships.cpp.o" "gcc" "src/bgp/CMakeFiles/riskroute_bgp.dir/relationships.cpp.o.d"
  "/root/repo/src/bgp/restoration.cpp" "src/bgp/CMakeFiles/riskroute_bgp.dir/restoration.cpp.o" "gcc" "src/bgp/CMakeFiles/riskroute_bgp.dir/restoration.cpp.o.d"
  "/root/repo/src/bgp/risk_selection.cpp" "src/bgp/CMakeFiles/riskroute_bgp.dir/risk_selection.cpp.o" "gcc" "src/bgp/CMakeFiles/riskroute_bgp.dir/risk_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forecast/CMakeFiles/riskroute_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/hazard/CMakeFiles/riskroute_hazard.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/riskroute_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/riskroute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/riskroute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/riskroute_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/riskroute_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
