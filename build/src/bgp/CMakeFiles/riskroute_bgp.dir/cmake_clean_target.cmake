file(REMOVE_RECURSE
  "libriskroute_bgp.a"
)
