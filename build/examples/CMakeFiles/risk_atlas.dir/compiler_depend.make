# Empty compiler generated dependencies file for risk_atlas.
# This may be replaced when dependencies are built.
