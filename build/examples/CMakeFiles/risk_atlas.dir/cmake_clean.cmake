file(REMOVE_RECURSE
  "CMakeFiles/risk_atlas.dir/risk_atlas.cpp.o"
  "CMakeFiles/risk_atlas.dir/risk_atlas.cpp.o.d"
  "risk_atlas"
  "risk_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
