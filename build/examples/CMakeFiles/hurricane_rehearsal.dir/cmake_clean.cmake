file(REMOVE_RECURSE
  "CMakeFiles/hurricane_rehearsal.dir/hurricane_rehearsal.cpp.o"
  "CMakeFiles/hurricane_rehearsal.dir/hurricane_rehearsal.cpp.o.d"
  "hurricane_rehearsal"
  "hurricane_rehearsal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hurricane_rehearsal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
