# Empty dependencies file for hurricane_rehearsal.
# This may be replaced when dependencies are built.
