file(REMOVE_RECURSE
  "CMakeFiles/outage_drill.dir/outage_drill.cpp.o"
  "CMakeFiles/outage_drill.dir/outage_drill.cpp.o.d"
  "outage_drill"
  "outage_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
