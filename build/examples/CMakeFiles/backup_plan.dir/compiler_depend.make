# Empty compiler generated dependencies file for backup_plan.
# This may be replaced when dependencies are built.
