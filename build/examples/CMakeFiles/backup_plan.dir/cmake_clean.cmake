file(REMOVE_RECURSE
  "CMakeFiles/backup_plan.dir/backup_plan.cpp.o"
  "CMakeFiles/backup_plan.dir/backup_plan.cpp.o.d"
  "backup_plan"
  "backup_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
